(* Recording sessions.

   Wire the kernel's non-deterministic sources (network rx, keyboard) into
   an event log, run the workload live, and produce a {!Trace.t} that the
   {!Replayer} can consume.  Mirrors "start PANDA in recording mode, run the
   malware, stop the recording". *)

type session = {
  kernel : Faros_os.Kernel.t;
  mutable rev_events : Trace.event list;
  mutable syscalls : int;
}

let start (kernel : Faros_os.Kernel.t) =
  let s = { kernel; rev_events = []; syscalls = 0 } in
  Faros_os.Netstack.set_record_sink kernel.net (fun flow data ->
      s.rev_events <- Trace.Packet (flow, data) :: s.rev_events);
  Faros_os.Netstack.set_inbound_sink kernel.net (fun tick ev ->
      s.rev_events <- Trace.Inbound (tick, ev) :: s.rev_events);
  Faros_os.Input_dev.set_record_sink kernel.input (fun key ->
      s.rev_events <- Trace.Key key :: s.rev_events);
  Faros_os.Kernel.subscribe kernel (fun ev ->
      match ev with
      | Faros_os.Os_event.Sys_enter _ -> s.syscalls <- s.syscalls + 1
      | _ -> ());
  s

let finish (s : session) : Trace.t =
  {
    events = List.rev s.rev_events;
    final_tick = Faros_os.Kernel.tick s.kernel;
    syscall_count = s.syscalls;
  }

(* Record a full run: [setup] provisions images/actors/keys, [boot] spawns
   the initial processes, then the system runs to completion.  [plugins]
   lets live monitors (the Cuckoo-style sandbox) watch the recording run. *)
let record ?max_ticks ?timeslice ?(profile = Faros_obs.Profile.disabled)
    ?(plugins : (Faros_os.Kernel.t -> Plugin.t list) option) ~setup ~boot () =
  let kernel = Faros_os.Kernel.create () in
  if Faros_obs.Profile.enabled profile then
    Faros_os.Kstate.set_profile kernel profile;
  Faros_obs.Profile.enter profile "record.setup";
  setup kernel;
  let session = start kernel in
  (match plugins with
  | Some make -> Plugin.attach_all kernel (make kernel)
  | None -> ());
  boot kernel;
  Faros_obs.Profile.exit profile;
  Faros_os.Kernel.run ?max_ticks ?timeslice kernel;
  (kernel, finish session)
