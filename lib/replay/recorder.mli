(** Recording sessions: "start PANDA in recording mode, run the malware,
    stop the recording".

    Wires the kernel's non-deterministic sources (network rx, keyboard)
    into an event log, runs the workload live, and produces a {!Trace.t}
    the {!Replayer} can consume. *)

type session

val start : Faros_os.Kernel.t -> session
(** Attach record sinks to a kernel's devices. *)

val finish : session -> Trace.t

val record :
  ?max_ticks:int ->
  ?timeslice:int ->
  ?profile:Faros_obs.Profile.t ->
  ?plugins:(Faros_os.Kernel.t -> Plugin.t list) ->
  setup:(Faros_os.Kernel.t -> unit) ->
  boot:(Faros_os.Kernel.t -> unit) ->
  unit ->
  Faros_os.Kernel.t * Trace.t
(** Record a full run: [setup] provisions images/actors/keys, [boot] spawns
    the initial processes, then the system runs to completion.  [plugins]
    lets live monitors (the Cuckoo-style sandbox) watch the recording
    run.  [profile] (default disabled) attaches a span profiler to the
    kernel and machine for the duration of the run. *)
