(** Deterministic replay.

    Rebuilds the system from the same [setup]/[boot] functions used at
    record time, feeds non-deterministic input from the trace instead of
    live actors, and runs with analysis plugins attached.  Divergence is
    detected by comparing instruction and syscall counts against the
    trace's integrity metadata. *)

type result = {
  kernel : Faros_os.Kernel.t;
  replay_ticks : int;
  replay_syscalls : int;
  diverged : bool;
}

val replay :
  ?max_ticks:int ->
  ?timeslice:int ->
  ?tb_cache:bool ->
  ?dift_fast:bool ->
  ?profile:Faros_obs.Profile.t ->
  ?plugins:(Faros_os.Kernel.t -> Plugin.t list) ->
  ?sample:(int * (tick:int -> syscalls:int -> unit)) ->
  setup:(Faros_os.Kernel.t -> unit) ->
  boot:(Faros_os.Kernel.t -> unit) ->
  Trace.t ->
  result
(** [plugins] builds the plugin list against the freshly constructed
    kernel, after images are provisioned but before any process runs — the
    window in which FAROS scans and taints the export tables.

    [tb_cache] forces the machine's translation-block cache on or off for
    this replay only (default: {!Faros_vm.Machine.tb_default_enabled});
    replays of the same trace are byte-identical either way.

    [dift_fast] forces the DIFT untainted fast path on or off for this
    replay only (default: {!Faros_vm.Machine.dift_fast_default_enabled});
    it only takes effect when the TB cache is on, and never changes
    analysis results — only how much propagation work is skipped.

    [sample] is [(interval, fire)]: [fire] runs every [interval] kernel
    ticks (installed after the plugins, so it observes post-propagation
    analysis state) and once more after the run, so the last sample always
    reflects the final system state.

    [profile] (default disabled) attaches a span profiler to the kernel
    and machine before the plugins run, so both a bare replay and a
    FAROS-on replay produce [vm.step] / [kernel.syscall] spans. *)
