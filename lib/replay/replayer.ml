(* Deterministic replay.

   Rebuilds the system from the same [setup]/[boot] functions used at
   record time, feeds non-deterministic input from the trace instead of
   live actors, and runs with analysis plugins attached.  Divergence is
   detected by comparing instruction and syscall counts against the
   trace's integrity metadata — if the guest asked for anything the trace
   does not determine, the counts cannot match. *)

type result = {
  kernel : Faros_os.Kernel.t;
  replay_ticks : int;
  replay_syscalls : int;
  diverged : bool;
}

(* [plugins] builds the plugin list against the freshly constructed kernel,
   after images are provisioned but before any process runs — the window in
   which FAROS scans and taints the export tables. *)
let replay ?max_ticks ?timeslice ?tb_cache ?dift_fast
    ?(profile = Faros_obs.Profile.disabled)
    ?(plugins : (Faros_os.Kernel.t -> Plugin.t list) option)
    ?(sample : (int * (tick:int -> syscalls:int -> unit)) option) ~setup ~boot
    (trace : Trace.t) =
  let kernel = Faros_os.Kernel.create () in
  (* Installed before the plugins so the FAROS plugin (which re-installs
     the shared profiler via [Kstate.set_profile]) and a bare replay both
     get [vm.step]/[kernel.syscall] spans. *)
  if Faros_obs.Profile.enabled profile then
    Faros_os.Kstate.set_profile kernel profile;
  (* Per-replay overrides of the machine's translation-block cache and the
     DIFT fast path: the differential harness and the bench compare
     configurations over the same trace without touching the process-wide
     defaults.  Both must land before the plugins attach — the FAROS
     plugin reads them at create time. *)
  (match tb_cache with
  | Some b -> Faros_vm.Machine.set_tb_enabled kernel.machine b
  | None -> ());
  (match dift_fast with
  | Some b -> Faros_vm.Machine.set_dift_fast kernel.machine b
  | None -> ());
  (* Everything up to the run loop — image install, plugin construction
     (the FAROS plugin scans and taints export tables here), boot — is one
     [replay.setup] span, so the replay's own span keeps almost no
     unattributed self time. *)
  Faros_obs.Profile.enter profile "replay.setup";
  setup kernel;
  Faros_os.Netstack.set_replay_source kernel.net (fun flow ->
      Trace.rx_chunks trace flow);
  (* Host-initiated connections replay from the recorded tick-stamped
     schedule: the kernel pump delivers them at the same slice boundaries
     as during recording. *)
  Faros_os.Netstack.schedule_inbound kernel.net (Trace.inbound_schedule trace);
  Faros_os.Input_dev.set_replay_keys kernel.input (Trace.keys trace);
  let syscalls = ref 0 in
  Faros_os.Kernel.subscribe kernel (fun ev ->
      match ev with
      | Faros_os.Os_event.Sys_enter _ -> incr syscalls
      | _ -> ());
  (match plugins with
  | Some make -> Plugin.attach_all kernel (make kernel)
  | None -> ());
  (* The sampler hook installs after the plugins so each sample sees the
     analysis state with that instruction's propagation already applied. *)
  (match sample with
  | Some (interval, fire) when interval > 0 ->
    Faros_vm.Machine.add_exec_hook kernel.machine (fun _ _ ->
        let tick = Faros_os.Kernel.tick kernel in
        if tick mod interval = 0 then fire ~tick ~syscalls:!syscalls)
  | Some _ | None -> ());
  boot kernel;
  Faros_obs.Profile.exit profile;
  Faros_os.Kernel.run ?max_ticks ?timeslice kernel;
  (* One forced sample at the end so the series' last row reflects the
     final system state regardless of where the interval landed. *)
  (match sample with
  | Some (interval, fire) when interval > 0 ->
    fire ~tick:(Faros_os.Kernel.tick kernel) ~syscalls:!syscalls
  | Some _ | None -> ());
  let replay_ticks = Faros_os.Kernel.tick kernel in
  {
    kernel;
    replay_ticks;
    replay_syscalls = !syscalls;
    diverged =
      replay_ticks <> trace.final_tick || !syscalls <> trace.syscall_count;
  }
