(* Recorded non-deterministic input.

   Everything else in the guest is deterministic (pure-function scheduler,
   synthetic devices, no wall clock), so a trace of network arrivals and
   keystrokes is sufficient to replay a whole-system execution exactly —
   the property PANDA's record/replay provides the paper.  The trace also
   carries integrity metadata so the replayer can detect divergence.

   Host-initiated (inbound) connections are recorded as tick-stamped
   [Inbound] events: the recorder stores each delivered event together
   with the slice-boundary tick at which the netstack pump delivered it,
   and the replayer feeds the same schedule back into the pump.  Traces
   without inbound events keep the original "FTR1" wire format
   byte-for-byte; traces with them use "FTR2" (same layout plus the
   'C'/'D'/'F' inbound tags), and [parse] accepts both. *)

type event =
  | Packet of Faros_os.Types.flow * string
  | Key of int
  | Inbound of int * Faros_os.Netstack.inbound_event
      (* delivery tick + the event the pump delivered *)

type t = {
  events : event list;  (* in arrival order *)
  final_tick : int;  (* instruction count when recording stopped *)
  syscall_count : int;
}

let empty = { events = []; final_tick = 0; syscall_count = 0 }

(* All payload chunks received on [flow], in order. *)
let rx_chunks t flow =
  List.filter_map
    (function
      | Packet (f, data) when Faros_os.Types.flow_equal f flow -> Some data
      | Packet _ | Key _ | Inbound _ -> None)
    t.events

let keys t =
  List.filter_map (function Key k -> Some k | Packet _ | Inbound _ -> None) t.events

(* The tick-stamped inbound schedule, ready for [Netstack.schedule_inbound]. *)
let inbound_schedule t =
  List.filter_map
    (function Inbound (tick, ev) -> Some (tick, ev) | Packet _ | Key _ -> None)
    t.events

let packet_count t =
  List.length
    (List.filter (function Packet _ -> true | Key _ | Inbound _ -> false) t.events)

let inbound_count t =
  List.length
    (List.filter (function Inbound _ -> true | Packet _ | Key _ -> false) t.events)

let total_rx_bytes t =
  List.fold_left
    (fun acc -> function
      | Packet (_, d) -> acc + String.length d
      | Inbound (_, Faros_os.Netstack.Inb_data (_, d)) -> acc + String.length d
      | Inbound (_, (Faros_os.Netstack.Inb_connect _ | Faros_os.Netstack.Inb_fin _))
      | Key _ -> acc)
    0 t.events

(* -- serialization (trace files an analyst can keep alongside a sample) -- *)

let put_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_flow buf (f : Faros_os.Types.flow) =
  put_u32 buf f.src_ip;
  put_u32 buf f.src_port;
  put_u32 buf f.dst_ip;
  put_u32 buf f.dst_port

let serialize t =
  let buf = Buffer.create 256 in
  let has_inbound =
    List.exists (function Inbound _ -> true | Packet _ | Key _ -> false) t.events
  in
  (* Traces without inbound events keep the v1 format byte-for-byte. *)
  Buffer.add_string buf (if has_inbound then "FTR2" else "FTR1");
  put_u32 buf t.final_tick;
  put_u32 buf t.syscall_count;
  put_u32 buf (List.length t.events);
  List.iter
    (fun ev ->
      match ev with
      | Packet (f, data) ->
        Buffer.add_char buf 'P';
        put_flow buf f;
        put_str buf data
      | Key k ->
        Buffer.add_char buf 'K';
        put_u32 buf k
      | Inbound (tick, Faros_os.Netstack.Inb_connect f) ->
        Buffer.add_char buf 'C';
        put_u32 buf tick;
        put_flow buf f
      | Inbound (tick, Faros_os.Netstack.Inb_data (f, data)) ->
        Buffer.add_char buf 'D';
        put_u32 buf tick;
        put_flow buf f;
        put_str buf data
      | Inbound (tick, Faros_os.Netstack.Inb_fin f) ->
        Buffer.add_char buf 'F';
        put_u32 buf tick;
        put_flow buf f)
    t.events;
  Buffer.contents buf

exception Bad_trace of string

type reader = { src : string; mutable pos : int }

let get_u32 r =
  if r.pos + 4 > String.length r.src then raise (Bad_trace "truncated");
  let b i = Char.code r.src.[r.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.pos <- r.pos + 4;
  v

let get_str r =
  let n = get_u32 r in
  if r.pos + n > String.length r.src then raise (Bad_trace "truncated string");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_char r =
  if r.pos >= String.length r.src then raise (Bad_trace "truncated tag");
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_flow r : Faros_os.Types.flow =
  let src_ip = get_u32 r in
  let src_port = get_u32 r in
  let dst_ip = get_u32 r in
  let dst_port = get_u32 r in
  { src_ip; src_port; dst_ip; dst_port }

let parse src =
  if String.length src < 4 then raise (Bad_trace "bad magic");
  (match String.sub src 0 4 with
  | "FTR1" | "FTR2" -> ()
  | _ -> raise (Bad_trace "bad magic"));
  let r = { src; pos = 4 } in
  let final_tick = get_u32 r in
  let syscall_count = get_u32 r in
  let n = get_u32 r in
  let events =
    List.init n (fun _ ->
        match get_char r with
        | 'P' ->
          let f = get_flow r in
          let data = get_str r in
          Packet (f, data)
        | 'K' -> Key (get_u32 r)
        | 'C' ->
          let tick = get_u32 r in
          Inbound (tick, Faros_os.Netstack.Inb_connect (get_flow r))
        | 'D' ->
          let tick = get_u32 r in
          let f = get_flow r in
          let data = get_str r in
          Inbound (tick, Faros_os.Netstack.Inb_data (f, data))
        | 'F' ->
          let tick = get_u32 r in
          Inbound (tick, Faros_os.Netstack.Inb_fin (get_flow r))
        | c -> raise (Bad_trace (Printf.sprintf "bad event tag %C" c)))
  in
  { events; final_tick; syscall_count }
