(* Stateful property: ANY random campaign over ANY registry subset is
   byte-identical serial vs parallel.

   The generator draws a random multiset of samples (attacks, generated
   sweep points of every kind, and the deliberately crashing hidden
   sample, so the Error path is covered too) and the property runs the
   same subset through [Campaign.run] at workers=1 and workers=4,
   requiring identical results, mismatch lists, matrices and merged
   metric registries — the farm's determinism contract with work
   stealing on.

   FAROS_FARM_DOMAINS=4 forces four real domains even on a single-core
   CI host (the pool otherwise caps at the recommended domain count), so
   the parallel leg genuinely exercises cross-domain scheduling and
   stealing.  QCheck shrinks a failing subset toward the smallest sample
   list that still diverges — the repro a scheduler bug report needs. *)

let () = Unix.putenv "FAROS_FARM_DOMAINS" "4"

(* The draw pool: cheap-but-diverse samples.  Uneven job lengths on
   purpose (idle-loop victims next to hundred-tick self-injects) so the
   4-worker leg actually steals. *)
let pool : Faros_corpus.Registry.sample array =
  let sweep_picks =
    List.filter
      (fun (s : Faros_corpus.Registry.sample) ->
        List.mem s.id
          [
            "swp_self_keep_c1_b016_s00"; "swp_self_scrub_c2_b064_s01";
            "swp_refl_notepad_keep_c4_b016_s00"; "swp_iat_p1604_keep_b016_s00";
            "swp_drop_c2_b064_s00"; "swp_launder_c1_s00";
          ])
      (Faros_corpus.Registry.sweep1k ())
  in
  Array.of_list
    (Faros_corpus.Registry.attacks ()
    @ sweep_picks
    @ [ Faros_corpus.Registry.crash_test () ])

(* The worker-count-independent projection of a campaign: everything but
   wall clocks and worker indices. *)
let fingerprint (c : Faros_farm.Campaign.t) =
  String.concat "\n"
    (List.map
       (fun (r : Faros_farm.Campaign.job_result) ->
         Printf.sprintf "%s %s %s %s %b %b %d %d %d %d %d %d %d %d %d %d %b"
           r.jr_id r.jr_category
           (Faros_farm.Campaign.verdict_name r.jr_verdict)
           (Faros_farm.Campaign.verdict_detail r.jr_verdict)
           r.jr_diverged r.jr_mismatch r.jr_record_ticks r.jr_replay_ticks
           r.jr_syscalls r.jr_tainted_bytes r.jr_interned_provs
           r.jr_graph_nodes r.jr_graph_edges r.jr_flag_sites r.jr_slice_nodes
           r.jr_slice_origins r.jr_netflow_origin)
       c.results
    @ c.mismatches
    @ [
        Fmt.str "%a" Faros_farm.Campaign.pp_matrix c;
        Fmt.str "%a" Faros_farm.Campaign.pp_summary c;
        Faros_obs.Metrics.to_json c.metrics;
      ])

let serial_equals_parallel indices =
  let samples = List.map (fun i -> pool.(i)) indices in
  let run workers = Faros_farm.Campaign.run ~workers samples in
  fingerprint (run 1) = fingerprint (run 4)

let arb_subset =
  QCheck.(list_of_size Gen.(1 -- 10) (int_bound (Array.length pool - 1)))

let prop_serial_equals_parallel =
  QCheck.Test.make ~name:"campaign serial = campaign -j4 (stealing on)"
    ~count:8 arb_subset serial_equals_parallel

let () =
  Alcotest.run "pbt_farm"
    [
      ( "farm",
        [ QCheck_alcotest.to_alcotest prop_serial_equals_parallel ] );
    ]
