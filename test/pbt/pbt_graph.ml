(* Stateful property: drive the vulnerable server with a random command
   sequence (a traffic mix of benign requests, chunked requests and
   injections), build the attack graph twice from the same replay — the
   resident one-shot graph and the bounded-memory delta stream round-
   tripped through the forensic store — and require byte-identical
   exports and whodunit slices.

   QCheck shrinks a failing command list toward the smallest traffic mix
   that still breaks the equivalence, which is exactly the repro one
   wants in a bug report. *)

(* One client's behavior in the generated schedule.  [Evil] carries the
   exec-magic payload the vulnerable worker executes; [Chunked] splits a
   benign request across sends to exercise reassembly. *)
type cmd = Benign | Chunked | Evil | Tiny

let cmd_of_int = function
  | 0 -> Benign
  | 1 -> Chunked
  | 2 -> Evil
  | _ -> Tiny

let payload_of_cmd i = function
  | Benign -> [ Faros_corpus.Servers.benign_request i ]
  | Chunked ->
    let r = Faros_corpus.Servers.benign_request i in
    let cut = String.length r / 2 in
    [ String.sub r 0 cut; String.sub r cut (String.length r - cut) ]
  | Evil -> [ Faros_corpus.Servers.evil_request () ]
  | Tiny -> [ "ping" ]

(* Build both graphs from one analysis: the resident baseline and the
   streaming segment rows. *)
let dual_build (scn : Faros_corpus.Scenario.t) name =
  let sink = Faros_obs.Sink.create () in
  let builder = ref None in
  let writer = ref None in
  let outcome =
    Faros_corpus.Scenario.analyze
      ~extra_plugins:(fun kernel faros ->
        let w = Faros_query.Segment.writer ~seg_rows:64 ~sink ~run:name () in
        writer := Some w;
        let b =
          Faros_graph.Build.create
            ~consumer:(Faros_query.Segment.consume w)
            ~sample:name ()
        in
        builder := Some b;
        [ Faros_graph.Build.plugin b ~kernel ~faros ])
      scn
  in
  let b = Option.get !builder and w = Option.get !writer in
  Faros_graph.Build.enrich b outcome.faros;
  Faros_query.Segment.close w;
  (Faros_graph.Build.graph b, Faros_obs.Sink.lines sink)

let render g =
  let slices = Faros_graph.Slice.slices g in
  let chains =
    List.concat_map
      (fun (s : Faros_graph.Slice.t) ->
        List.map Faros_graph.Slice.render_chain s.sl_chains)
      slices
  in
  Faros_graph.Export.to_json ~slices g
  ^ Faros_graph.Export.to_dot g
  ^ String.concat "\n" chains

(* The property: online + offline-enrichment through the delta stream and
   the store reconstructs the resident graph exactly, for any traffic. *)
let stream_equals_resident (worker_close, cmds) =
  let cmds = List.map cmd_of_int cmds in
  let payloads = List.mapi payload_of_cmd cmds in
  let scn, _ =
    Faros_corpus.Servers.custom_load ~worker_close ~name:"pbt_traffic"
      ~payloads ()
  in
  let g, lines = dual_build scn "pbt_traffic" in
  let store = Faros_query.Store.create () in
  match Faros_query.Store.ingest_lines store lines with
  | Error _ -> false
  | Ok _ -> (
    match Faros_query.Store.run_graph store "pbt_traffic" with
    | Error _ -> false
    | Ok g' ->
      Faros_graph.Graph.node_count g = Faros_graph.Graph.node_count g'
      && Faros_graph.Graph.edge_count g = Faros_graph.Graph.edge_count g'
      && render g = render g')

let arb_traffic =
  QCheck.(
    pair bool (list_of_size Gen.(1 -- 5) (int_bound 3)))

let prop_stream_equals_resident =
  QCheck.Test.make ~name:"delta stream + store = resident graph" ~count:12
    arb_traffic stream_equals_resident

let () =
  Alcotest.run "pbt"
    [
      ( "graph",
        [ QCheck_alcotest.to_alcotest prop_stream_equals_resident ] );
    ]
