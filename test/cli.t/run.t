The corpus registry enumerates all samples deterministically.

  $ faros list | tail -1
  136 samples

  $ faros list | head -4
  id                                       category               expected
  reflective_dll_inject                    attack(reflective-dll-injection) flag
  reverse_tcp_dns                          attack(reflective-dll-injection) flag
  bypassuac_injection                      attack(reflective-dll-injection) flag

The available DIFT policies.

  $ faros policies
  name             addr-deps  ctrl-deps  imm    1-bit  files
  faros            false      false      false  false  true
  address-deps     true       false      false  false  true
  control-deps     false      true       false  false  true
  all-indirect     true       true       false  false  true
  minos            true       false      true   true   false
  bit-taint        false      false      false  true   false

The headline attack: record, replay under FAROS, Table II report.
Everything is deterministic, down to the instruction counts.

  $ faros run reflective_dll_inject
  sample:       reflective_dll_inject
  record:       376 instructions, 1 packets, 217 rx bytes
  replay:       376 instructions, diverged: false
  taint:        376 instrs processed, 4753 tainted bytes, tags: 1 netflow / 2 process / 2 file
  verdict:      IN-MEMORY INJECTION FLAGGED
  4 flagged load(s) at 2 site(s), 0 whitelisted
  Memory Address Provenance List
  0x1000009D  NetFlow: {src ip,port: 169.254.26.161:4444, dest ip.port: 169.254.57.168:49162} -> Process: inject_client.exe -> Process: notepad.exe;
  0x10000042  NetFlow: {src ip,port: 169.254.26.161:4444, dest ip.port: 169.254.57.168:49162} -> Process: inject_client.exe -> Process: notepad.exe;

A clean sample stays clean.

  $ faros run snipping_tool_s0
  sample:       snipping_tool_s0
  record:       26 instructions, 0 packets, 0 rx bytes
  replay:       26 instructions, diverged: false
  taint:        26 instrs processed, 400 tainted bytes, tags: 0 netflow / 1 process / 2 file
  verdict:      clean
  0 flagged load(s) at 0 site(s), 0 whitelisted

Unknown samples are rejected with a hint.

  $ faros run no_such_sample
  unknown sample "no_such_sample" (try `faros list`)
  [1]

The end-of-run process list of the hollowing attack.

  $ faros ps process_hollowing
   100  process_hollowing.exe    terminated
   101  svchost.exe              terminated

Trace files round-trip through disk.

  $ faros record process_hollowing -o t.ftr
  recorded process_hollowing: 1107 instructions, 16 events, 96 trace bytes -> t.ftr
  $ faros replay process_hollowing -i t.ftr | head -2
  replayed process_hollowing from t.ftr: 1107 instructions, diverged: false
  verdict: IN-MEMORY INJECTION FLAGGED

The Section VI-B comparison on the transient attack: only FAROS flags.

  $ faros compare reflective_dll_inject_transient
  sample                               cuckoo  malfind  vadinfo   FAROS  netflow  
  reflective_dll_inject_transient      no      no       no        yes    yes      
  hooked api calls seen by cuckoo: 2; raw syscalls it missed: 50

Snapshot forensics on the hollowing sample.

  $ faros malfind process_hollowing
  pslist:
     100  process_hollowing.exe    terminated
     101  svchost.exe              terminated
  hollowing suspects: 101
  malfind: pid 101 (svchost.exe): private executable region at 0x10000000 (46 instrs)

Provenance-aware strings find the attacker's artifacts in the victim.

  $ faros strings reflective_dll_inject | grep notepad | grep injected
  notepad.exe          0x100000BD "MessageBoxAinjected!"   NetFlow: {src ip,port: 169.254.26.161:4444, dest ip.port: 169.254.57.168:49162} -> Process: inject_client.exe

The taint map after the self-injection run.

  $ faros taint reverse_tcp_dns | head -3
  process              tainted    netflow-tainted
  inject_client.exe    4517       4517
  
The full metrics registry after one analysis: a flagged sample...

  $ faros stats reflective_dll_inject
  sample:  reflective_dll_inject
  verdict: IN-MEMORY INJECTION FLAGGED
  metric                               kind       value
  detector.flags                       counter    4
  detector.instr_prov_len              histogram  n=4 sum=12 [2,4):4
  detector.loads_checked               counter    18
  detector.suppressed                  counter    0
  dift.fastpath.blocks_summarized      gauge      37
  dift.fastpath.hits                   gauge      254
  dift.fastpath.misses                 gauge      122
  engine.instrs                        counter    376
  engine.os_events                     counter    119
  engine.tag_inserts.export            counter    40
  engine.tag_inserts.file              counter    2
  engine.tag_inserts.netflow           counter    2
  obs.sink.dropped                     gauge      0
  obs.sink.events                      gauge      0
  prov.interned                        gauge      51
  shadow.pages                         gauge      6
  shadow.tainted_bytes                 gauge      4753
  shadow.tainted_regs                  gauge      3
  store.export_tags                    gauge      40
  store.file_tags                      gauge      2
  store.netflow_tags                   gauge      1
  store.process_tags                   gauge      2
  vm.tbcache.blocks                    gauge      0
  vm.tbcache.hits                      gauge      339
  vm.tbcache.invalidations             gauge      37
  vm.tbcache.misses                    gauge      37
  vm.tlb.hits                          gauge      12456
  vm.tlb.misses                        gauge      15

...and a clean one.

  $ faros stats snipping_tool_s0
  sample:  snipping_tool_s0
  verdict: clean
  metric                               kind       value
  detector.flags                       counter    0
  detector.instr_prov_len              histogram  n=0 sum=0
  detector.loads_checked               counter    3
  detector.suppressed                  counter    0
  dift.fastpath.blocks_summarized      gauge      7
  dift.fastpath.hits                   gauge      9
  dift.fastpath.misses                 gauge      17
  engine.instrs                        counter    26
  engine.os_events                     counter    13
  engine.tag_inserts.export            counter    40
  engine.tag_inserts.file              counter    2
  engine.tag_inserts.netflow           counter    0
  obs.sink.dropped                     gauge      0
  obs.sink.events                      gauge      0
  prov.interned                        gauge      44
  shadow.pages                         gauge      2
  shadow.tainted_bytes                 gauge      400
  shadow.tainted_regs                  gauge      1
  store.export_tags                    gauge      40
  store.file_tags                      gauge      2
  store.netflow_tags                   gauge      0
  store.process_tags                   gauge      1
  vm.tbcache.blocks                    gauge      0
  vm.tbcache.hits                      gauge      19
  vm.tbcache.invalidations             gauge      7
  vm.tbcache.misses                    gauge      7
  vm.tlb.hits                          gauge      1953
  vm.tlb.misses                        gauge      10

Structured trace events and the tick-sampled series, exported to disk.
The trace is Chrome trace_event JSON and passes the JSON checker; the
series records the replay's taint growth, tick by tick, ending on the
final state (376 ticks, 4753 tainted bytes).

  $ faros run reflective_dll_inject --trace-out rt.json --series-out rs.csv | tail -2
  trace:        109 events (0 dropped) -> rt.json
  series:       7 sample(s) -> rs.csv
  $ faros check-json rt.json
  rt.json: well-formed JSON (14896 bytes)
  $ grep -o tag_insert rt.json | wc -l
  44
  $ grep -o confluence_check rt.json | wc -l
  4
  $ grep -o '"flag"' rt.json | wc -l
  4
  $ cat rs.csv
  tick,syscalls,instrs,tainted_bytes,tainted_regs,shadow_pages,interned_provs,netflow_tags,process_tags,file_tags,export_tags,flags,suppressed
  0,0,1,4536,0,4,44,0,1,2,40,0,0
  64,13,65,4536,0,4,44,0,1,2,40,0,0
  128,26,129,4536,0,4,44,0,1,2,40,0,0
  192,38,193,4536,0,4,44,0,1,2,40,0,0
  256,44,257,4540,2,5,47,1,2,2,40,0,0
  320,49,321,4753,3,6,50,1,2,2,40,2,0
  376,51,376,4753,3,6,51,1,2,2,40,4,0

A malformed document is rejected with a reason.

  $ printf '{"a":1,}' > bad.json
  $ faros check-json bad.json
  bad.json: malformed JSON: expected '"' at offset 7
  [1]

A campaign runs a registry slice on a pool of worker domains and folds
the verdicts into the evaluation's per-category matrix; the output is
deterministic regardless of worker count.  `sweep` is the serial
single-worker spelling of the same run.

  $ faros campaign -j 2 --filter 'applet_*'
  category                              samples  flagged    clean   error  timeout mismatches
  jit-applet                                  8        0        8       0        0          0
  jit-applet(native)                          2        2        0       0        0          0
  10 samples, 0 mismatches

CSV export to stdout replaces the human rendering; wall-clock columns
are the only nondeterministic fields, so project them away.

  $ faros campaign --filter 'skype_s?' --csv - | cut -d, -f1,5,8
  id,verdict,mismatch
  skype_s0,clean,false
  skype_s1,clean,false
  skype_s2,clean,false

A filter that matches nothing is an error, not an empty success.

  $ faros campaign --filter 'no_such_*'
  no samples match the filter (try `faros list`)
  [1]

The forensic attack graph: nodes are the system objects FAROS's tags
name, edges the tick-stamped interactions between them, and each flag
site carries a whodunit slice back to its input origin -- the Fig. 4
chain, NetFlow first, flagged load last.

  $ faros graph reflective_dll_inject
  sample:  reflective_dll_inject
  graph:   13 nodes, 26 edges
  nodes:   flow 1, process 2, file 2, module 2, region 4, flag 2
  slices:
    flag 0x1000009D in notepad.exe <- 4 node(s), 1 origin(s)
      NetFlow 169.254.26.161:4444 -> 169.254.57.168:49162 -> inject_client.exe (pid 101) -> notepad.exe (pid 100) -> flag 0x1000009D in notepad.exe
    flag 0x10000042 in notepad.exe <- 4 node(s), 1 origin(s)
      NetFlow 169.254.26.161:4444 -> 169.254.57.168:49162 -> inject_client.exe (pid 101) -> notepad.exe (pid 100) -> flag 0x10000042 in notepad.exe

A benign sample has a graph but no flag sites, hence no slices.

  $ faros graph snipping_tool_s0
  sample:  snipping_tool_s0
  graph:   5 nodes, 5 edges
  nodes:   process 1, file 2, module 1, region 1
  slices:  (none - no flag sites)

--slice restricts the export to the union of the whodunit slices: the
attack backbone only, everything benign pruned away.  Injection edges
are red, provenance edges dotted.

  $ faros graph reflective_dll_inject --slice --dot -
  digraph "reflective_dll_inject" {
    rankdir=LR;
    node [fontname="sans", fontsize=10];
    edge [fontname="sans", fontsize=9];
    n0 [label="notepad.exe (pid 100)", shape=box];
    n1 [label="inject_client.exe (pid 101)", shape=box];
    n2 [label="NetFlow 169.254.26.161:4444 -> 169.254.57.168:49162", shape=ellipse, style=filled, fillcolor=lightblue];
    n3 [label="flag 0x1000009D in notepad.exe", shape=octagon, style=filled, fillcolor=salmon];
    n4 [label="flag 0x10000042 in notepad.exe", shape=octagon, style=filled, fillcolor=salmon];
    n1 -> n2 [label="connected @208"];
    n2 -> n1 [label="received x2 217B @224"];
    n1 -> n0 [label="injected-into x3 213B @264", color=red, penwidth=2];
    n1 -> n0 [label="suspended @274"];
    n1 -> n0 [label="resumed @281"];
    n0 -> n3 [label="flagged x3 @295", color=red];
    n2 -> n3 [label="tainted-by x3 @295", style=dotted];
    n1 -> n3 [label="tainted-by x3 @295", style=dotted];
    n0 -> n3 [label="tainted-by x3 @295", style=dotted];
    n0 -> n4 [label="flagged @362", color=red];
    n2 -> n4 [label="tainted-by @362", style=dotted];
    n1 -> n4 [label="tainted-by @362", style=dotted];
    n0 -> n4 [label="tainted-by @362", style=dotted];
  }

The JSON export passes the repo's own checker, and the campaign CSV
gains the per-sample slice summary (projected here without the
wall-clock column).

  $ faros graph reflective_dll_inject --json graph.json
  wrote graph.json
  sample:  reflective_dll_inject
  graph:   13 nodes, 26 edges
  nodes:   flow 1, process 2, file 2, module 2, region 4, flag 2
  slices:
    flag 0x1000009D in notepad.exe <- 4 node(s), 1 origin(s)
      NetFlow 169.254.26.161:4444 -> 169.254.57.168:49162 -> inject_client.exe (pid 101) -> notepad.exe (pid 100) -> flag 0x1000009D in notepad.exe
    flag 0x10000042 in notepad.exe <- 4 node(s), 1 origin(s)
      NetFlow 169.254.26.161:4444 -> 169.254.57.168:49162 -> inject_client.exe (pid 101) -> notepad.exe (pid 100) -> flag 0x10000042 in notepad.exe
  $ faros check-json graph.json
  graph.json: well-formed JSON (4379 bytes)
  $ faros campaign --filter 'reflective_*' --csv - | cut -d, -f1,14,15,16,17,18,19
  id,graph_nodes,graph_edges,flag_sites,slice_nodes,slice_origins,netflow_origin
  reflective_dll_inject,13,26,2,5,1,true

Whole-pipeline observability.  The span profiler attributes every stage
of one sample's analysis; wall times vary run to run, so project the
deterministic part — span paths and call counts, which mirror the
deterministic replay exactly.

  $ faros profile run reflective_dll_inject | head -2
  sample:   reflective_dll_inject
  verdict:  IN-MEMORY INJECTION FLAGGED

  $ faros profile run reflective_dll_inject --top 100 | awk 'NR>6 && NF {print $1, $2}' | sort
  finalize 1
  record 1
  record/kernel.syscall 51
  record/record.setup 1
  record/vm.hooks 376
  record/vm.step 376
  replay 1
  replay/dift.os_event 2
  replay/kernel.syscall 51
  replay/kernel.syscall/dift.os_event 111
  replay/replay.setup 1
  replay/replay.setup/dift.os_event 6
  replay/vm.hooks 376
  replay/vm.hooks/detector.check 7
  replay/vm.hooks/dift.precheck 376
  replay/vm.hooks/dift.propagate 122
  replay/vm.hooks/dift.propagate/detector.check 11
  replay/vm.step 376

A campaign profiles the whole fleet — per-job span trees merged
driver-side — and streams one unified JSONL channel carrying all six
schema event types.  Pin the worker-domain cap so the utilization
summary is host-independent.

  $ FAROS_FARM_DOMAINS=1 faros campaign -j 2 --filter 'applet_*' --profile --jsonl-out obs.jsonl > camp.out
  $ head -4 camp.out
  category                              samples  flagged    clean   error  timeout mismatches
  jit-applet                                  8        0        8       0        0          0
  jit-applet(native)                          2        2        0       0        0          0
  10 samples, 0 mismatches

  $ grep -o 'workers: 2 requested, 1 spawned' camp.out
  workers: 2 requested, 1 spawned

  $ grep -c 'hotspots (fleet-merged, self time):' camp.out
  1

  $ grep -o 'wrote obs.jsonl (704 events, 0 dropped)' camp.out
  wrote obs.jsonl (704 events, 0 dropped)

The stream passes the repo's own JSONL checker, every line is typed and
versioned, and the sink's own drop counter is frozen into the closing
metric snapshot.

  $ faros check-json --jsonl obs.jsonl | sed 's/[0-9]* bytes/N bytes/'
  obs.jsonl: well-formed JSONL (704 lines, N bytes)

  $ cut -d, -f2 obs.jsonl | sort | uniq -c
        2 "type":"graph_flag"
       30 "type":"job_lifecycle"
        1 "type":"metric_snapshot"
       25 "type":"profile_span"
       10 "type":"series_point"
      636 "type":"trace_event"

  $ grep -o '"name":"obs.sink.dropped","kind":"gauge","value":[0-9]*' obs.jsonl
  "name":"obs.sink.dropped","kind":"gauge","value":0

The netd corpus — guest daemons under concurrent inbound traffic — ships
out-of-band: the default listing and campaign stay pinned to the core
130+showcase corpus, and the server samples opt in via --netd / --corpus.

  $ faros list | tail -1
  136 samples

  $ faros list --netd | tail -1
  168 samples

  $ faros list --netd | grep -c '^netd'
  32

A server under heavy benign load records real inbound traffic, replays
it bit-identically and raises no flag; the same server with one guilty
client among the crowd is flagged, and the whodunit slice names exactly
that client's netflow — not the hundred benign ones.

  $ faros run netd_benign_load | grep -E 'record:|replay:|verdict:'
  record:       6514 instructions, 0 packets, 2490 rx bytes
  replay:       6514 instructions, diverged: false
  verdict:      clean

  $ faros graph netd_inject_under_server
  sample:  netd_inject_under_server
  graph:   408 nodes, 811 edges
  nodes:   flow 100, process 101, file 2, module 101, region 102, flag 2
  slices:
    flag 0x1000009D in worker.exe <- 4 node(s), 1 origin(s)
      NetFlow 169.254.80.14:40050 -> 169.254.57.168:8080 -> worker.exe (pid 151) -> flag 0x1000009D in worker.exe
    flag 0x10000042 in worker.exe <- 4 node(s), 1 origin(s)
      NetFlow 169.254.80.14:40050 -> 169.254.57.168:8080 -> worker.exe (pid 151) -> flag 0x10000042 in worker.exe

A netd campaign carries the new budget columns at the end of each CSV
row, so older positional consumers are untouched.

  $ FAROS_FARM_DOMAINS=1 faros campaign --corpus netd --filter 'netd_*_c8_uniform' --csv - 2>/dev/null | cut -d, -f1,4,5,16,17,18,19,22
  id,expected,verdict,flag_sites,slice_nodes,slice_origins,netflow_origin,budget_exhausted
  netd_benign_c8_uniform,clean,clean,0,0,0,false,false
  netd_inject_c8_uniform,flag,flagged,2,5,1,true,false
