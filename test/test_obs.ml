(* Tests for the observability layer: metrics registry, time series, trace
   sinks, the JSON checker, and the telemetry sampled from a real replay. *)

open Faros_obs

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* -- metrics registry ---------------------------------------------------- *)

let metrics_tests =
  [
    Alcotest.test_case "counter increments and adds" `Quick (fun () ->
        let m = Metrics.create () in
        let c = Metrics.counter m "a" in
        Metrics.incr c;
        Metrics.incr c;
        Metrics.add c 40;
        check "value" 42 (Metrics.counter_value c));
    Alcotest.test_case "gauge holds the last set value" `Quick (fun () ->
        let m = Metrics.create () in
        let g = Metrics.gauge m "g" in
        Metrics.set g 7;
        Metrics.set g 3;
        check "value" 3 (Metrics.gauge_value g));
    Alcotest.test_case "registration is idempotent" `Quick (fun () ->
        let m = Metrics.create () in
        let c1 = Metrics.counter m "shared" in
        Metrics.incr c1;
        let c2 = Metrics.counter m "shared" in
        Metrics.incr c2;
        check "same underlying cell" 2 (Metrics.counter_value c1));
    Alcotest.test_case "kind mismatch raises" `Quick (fun () ->
        let m = Metrics.create () in
        ignore (Metrics.counter m "x");
        Alcotest.check_raises "gauge over counter"
          (Invalid_argument "Metrics: \"x\" already registered with another kind")
          (fun () -> ignore (Metrics.gauge m "x")));
    Alcotest.test_case "histogram log2 bucketing" `Quick (fun () ->
        let m = Metrics.create () in
        let h = Metrics.histogram m "h" in
        List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 1000 ];
        check "count" 6 (Metrics.histogram_count h);
        check "sum" 1010 (Metrics.histogram_sum h);
        let buckets = Metrics.histogram_bucket_list h in
        (* 0 -> (<=0); 1 -> [1,2); 2,3 -> [2,4); 4 -> [4,8); 1000 -> [512,1024) *)
        Alcotest.(check (list (triple int int int)))
          "buckets"
          [
            (min_int, 1, 1); (1, 2, 1); (2, 4, 2); (4, 8, 1); (512, 1024, 1);
          ]
          buckets);
    Alcotest.test_case "merge adds counters, gauges and histograms" `Quick
      (fun () ->
        let mk c g obs =
          let m = Metrics.create () in
          Metrics.add (Metrics.counter m "c") c;
          Metrics.set (Metrics.gauge m "g") g;
          List.iter (Metrics.observe (Metrics.histogram m "h")) obs;
          m
        in
        let into = mk 10 1 [ 1; 2 ] in
        Metrics.merge ~into (mk 32 2 [ 2; 1000 ]);
        check "counters add" 42 (Metrics.counter_value (Metrics.counter into "c"));
        check "gauges add" 3 (Metrics.gauge_value (Metrics.gauge into "g"));
        let h = Metrics.histogram into "h" in
        check "histogram count" 4 (Metrics.histogram_count h);
        check "histogram sum" 1005 (Metrics.histogram_sum h);
        (* merging a registry with disjoint names creates the cells *)
        let other = Metrics.create () in
        Metrics.incr (Metrics.counter other "only.there");
        Metrics.merge ~into other;
        check "new name lands" 1
          (Metrics.counter_value (Metrics.counter into "only.there")));
    Alcotest.test_case "rendering is sorted and deterministic" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.set (Metrics.gauge m "z.last") 1;
        Metrics.incr (Metrics.counter m "a.first");
        let rendered = Fmt.str "%a" Metrics.pp_table m in
        let idx needle =
          let n = String.length needle and len = String.length rendered in
          let rec go i =
            if i + n > len then Alcotest.failf "%s not rendered" needle
            else if String.sub rendered i n = needle then i
            else go (i + 1)
          in
          go 0
        in
        check_b "a before z" true (idx "a.first" < idx "z.last"));
    Alcotest.test_case "registry JSON is well-formed" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.incr (Metrics.counter m "quoted\"name");
        Metrics.observe (Metrics.histogram m "h") 5;
        match Json.well_formed (Metrics.to_json m) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

(* -- json ----------------------------------------------------------------- *)

let json_tests =
  [
    Alcotest.test_case "accepts valid documents" `Quick (fun () ->
        List.iter
          (fun s ->
            match Json.well_formed s with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%S rejected: %s" s e)
          [
            "{}";
            "[]";
            "  null ";
            {|{"a":[1,-2.5e3,true,false,null],"b":{"c":"d\neA"}}|};
            {|"lone string"|};
            "3.14";
          ]);
    Alcotest.test_case "rejects malformed documents" `Quick (fun () ->
        List.iter
          (fun s ->
            match Json.well_formed s with
            | Ok () -> Alcotest.failf "%S accepted" s
            | Error _ -> ())
          [
            "";
            "{";
            "[1,]";
            {|{"a":}|};
            {|{"a":1,}|};
            "[1] trailing";
            {|"unterminated|};
            "{1:2}";
            "01";
          ]);
    Alcotest.test_case "escape round-trips through the checker" `Quick (fun () ->
        let s = "quote\" backslash\\ newline\n ctrl\x01" in
        match Json.well_formed (Printf.sprintf "\"%s\"" (Json.escape s)) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

(* -- series ---------------------------------------------------------------- *)

let series_tests =
  [
    Alcotest.test_case "records rows in order" `Quick (fun () ->
        let s = Series.create ~capacity:8 ~columns:[ "a"; "b" ] in
        Series.sample s [| 1; 2 |];
        Series.sample s [| 3; 4 |];
        check "length" 2 (Series.length s);
        Alcotest.(check (list int)) "column a" [ 1; 3 ] (Series.column s "a");
        Alcotest.(check (list int)) "column b" [ 2; 4 ] (Series.column s "b"));
    Alcotest.test_case "ring buffer wraps, keeping the newest rows" `Quick
      (fun () ->
        let s = Series.create ~capacity:3 ~columns:[ "v" ] in
        for v = 1 to 10 do
          Series.sample s [| v |]
        done;
        check "total counts everything" 10 (Series.total s);
        check "length capped" 3 (Series.length s);
        Alcotest.(check (list int)) "newest retained" [ 8; 9; 10 ]
          (Series.column s "v");
        check "oldest retained row" 8 (Series.get s 0).(0);
        Alcotest.(check (option (array int))) "last" (Some [| 10 |])
          (Series.last s));
    Alcotest.test_case "arity mismatch raises" `Quick (fun () ->
        let s = Series.create ~capacity:2 ~columns:[ "a"; "b" ] in
        Alcotest.check_raises "short row"
          (Invalid_argument "Series.sample: row arity does not match columns")
          (fun () -> Series.sample s [| 1 |]));
    Alcotest.test_case "sampled row is copied" `Quick (fun () ->
        let s = Series.create ~capacity:2 ~columns:[ "a" ] in
        let row = [| 1 |] in
        Series.sample s row;
        row.(0) <- 99;
        check "unaffected" 1 (Series.get s 0).(0));
    Alcotest.test_case "csv has header plus one line per row" `Quick (fun () ->
        let s = Series.create ~capacity:4 ~columns:[ "a"; "b" ] in
        Series.sample s [| 1; 2 |];
        check_s "csv" "a,b\n1,2\n" (Series.to_csv s));
    Alcotest.test_case "json export is well-formed" `Quick (fun () ->
        let s = Series.create ~capacity:4 ~columns:[ "a"; "b" ] in
        Series.sample s [| 1; 2 |];
        Series.sample s [| 3; 4 |];
        match Json.well_formed (Series.to_json s) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

(* -- trace ------------------------------------------------------------------ *)

let trace_tests =
  [
    Alcotest.test_case "null sink is disabled and collects nothing" `Quick
      (fun () ->
        let t = Trace.null in
        check_b "disabled" false (Trace.enabled t);
        Trace.emit t ~cat:"c" ~name:"n" ~pid:1 [];
        check "no events" 0 (Trace.count t);
        Alcotest.(check (list reject)) "empty" [] (Trace.events t));
    Alcotest.test_case "collector records events with the clock" `Quick
      (fun () ->
        let t = Trace.collector () in
        check_b "enabled" true (Trace.enabled t);
        let now = ref 0 in
        Trace.set_clock t (fun () -> !now);
        now := 5;
        Trace.emit t ~cat:"engine" ~name:"tag_insert" ~pid:7
          [ ("bytes", Int 3) ];
        now := 9;
        Trace.emit t ~cat:"detector" ~name:"flag" ~pid:7 [];
        check "count" 2 (Trace.count t);
        (match Trace.events t with
        | [ e1; e2 ] ->
          check "ts1" 5 e1.Trace.ev_ts;
          check "ts2" 9 e2.Trace.ev_ts;
          check_s "name1" "tag_insert" e1.Trace.ev_name
        | _ -> Alcotest.fail "expected two events");
        check "by_category" 1 (List.length (Trace.by_category t "detector")));
    Alcotest.test_case "collector drops past its limit" `Quick (fun () ->
        let t = Trace.collector ~limit:2 () in
        for i = 1 to 5 do
          Trace.emit t ~cat:"c" ~name:"n" ~pid:i []
        done;
        check "kept" 2 (Trace.count t);
        check "dropped" 3 (Trace.dropped t));
    Alcotest.test_case "chrome export is well-formed JSON" `Quick (fun () ->
        let t = Trace.collector () in
        Trace.emit t ~cat:"engine" ~name:"tag \"quoted\"" ~pid:1
          [ ("s", Str "a\nb"); ("i", Int 3); ("b", Bool true) ];
        match Json.well_formed (Trace.to_chrome_json t) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

(* -- replay-level telemetry -------------------------------------------------- *)

let sorted_ascending xs = List.sort compare xs = xs

let telemetry_tests =
  [
    Alcotest.test_case "sampled series is consistent with final engine state"
      `Slow (fun () ->
        let sample =
          match Faros_corpus.Registry.find "reflective_dll_inject" with
          | Some s -> s
          | None -> Alcotest.fail "missing corpus sample"
        in
        let telemetry = Core.Telemetry.create () in
        let trace_sink = Faros_obs.Trace.collector () in
        let outcome =
          Faros_corpus.Scenario.analyze ~telemetry ~trace_sink sample.scenario
        in
        let series = Core.Telemetry.series telemetry in
        check_b "sampled at least twice" true (Series.total series >= 2);
        (* ticks are strictly increasing; a replay's taint only grows *)
        let ticks = Series.column series "tick" in
        check_b "ticks ascend" true (sorted_ascending ticks);
        let tainted = Series.column series "tainted_bytes" in
        check_b "tainted bytes monotone" true (sorted_ascending tainted);
        (* the forced final sample equals the end-of-replay state *)
        let final = Option.get (Series.last series) in
        let col name =
          let rec idx i = function
            | [] -> Alcotest.failf "no column %s" name
            | c :: _ when c = name -> final.(i)
            | _ :: rest -> idx (i + 1) rest
          in
          idx 0 (Series.columns series)
        in
        check "final tainted bytes" (Faros_dift.Shadow.tainted_bytes
          outcome.faros.engine.shadow)
          (col "tainted_bytes");
        check "final tick" outcome.replay.replay_ticks (col "tick");
        check "final instrs"
          (Faros_dift.Engine.instrs_processed outcome.faros.engine)
          (col "instrs");
        (* the trace sink saw the events the acceptance demands *)
        let has cat name =
          List.exists
            (fun (e : Trace.event) -> e.ev_cat = cat && e.ev_name = name)
            (Trace.events trace_sink)
        in
        check_b "tag_insert events" true (has "engine" "tag_insert");
        check_b "confluence_check events" true
          (has "detector" "confluence_check");
        check_b "flag events" true (has "detector" "flag");
        check_b "syscall events" true
          (List.exists
             (fun (e : Trace.event) -> e.ev_cat = "syscall")
             (Trace.events trace_sink));
        (* event timestamps are valid replay ticks *)
        check_b "timestamps within replay" true
          (List.for_all
             (fun (e : Trace.event) ->
               e.ev_ts >= 0 && e.ev_ts <= outcome.replay.replay_ticks)
             (Trace.events trace_sink)));
    Alcotest.test_case "disabled sinks leave no observable trace" `Slow
      (fun () ->
        let sample =
          match Faros_corpus.Registry.find "reflective_dll_inject" with
          | Some s -> s
          | None -> Alcotest.fail "missing corpus sample"
        in
        (* default analyze: null sink everywhere; the kernel's sink stays
           disabled and nothing is buffered anywhere *)
        let outcome = Faros_corpus.Scenario.analyze sample.scenario in
        check_b "plugin sink disabled" false
          (Trace.enabled outcome.faros.trace);
        check "plugin sink empty" 0 (Trace.count outcome.faros.trace);
        check_b "still flags" true (Core.Report.flagged outcome.report));
  ]

let () =
  Alcotest.run "faros_obs"
    [
      ("metrics", metrics_tests);
      ("json", json_tests);
      ("series", series_tests);
      ("trace", trace_tests);
      ("telemetry", telemetry_tests);
    ]
