(* Tests for the observability layer: metrics registry, time series, trace
   sinks, the JSON checker, and the telemetry sampled from a real replay. *)

open Faros_obs

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* -- metrics registry ---------------------------------------------------- *)

let metrics_tests =
  [
    Alcotest.test_case "counter increments and adds" `Quick (fun () ->
        let m = Metrics.create () in
        let c = Metrics.counter m "a" in
        Metrics.incr c;
        Metrics.incr c;
        Metrics.add c 40;
        check "value" 42 (Metrics.counter_value c));
    Alcotest.test_case "gauge holds the last set value" `Quick (fun () ->
        let m = Metrics.create () in
        let g = Metrics.gauge m "g" in
        Metrics.set g 7;
        Metrics.set g 3;
        check "value" 3 (Metrics.gauge_value g));
    Alcotest.test_case "registration is idempotent" `Quick (fun () ->
        let m = Metrics.create () in
        let c1 = Metrics.counter m "shared" in
        Metrics.incr c1;
        let c2 = Metrics.counter m "shared" in
        Metrics.incr c2;
        check "same underlying cell" 2 (Metrics.counter_value c1));
    Alcotest.test_case "kind mismatch raises" `Quick (fun () ->
        let m = Metrics.create () in
        ignore (Metrics.counter m "x");
        Alcotest.check_raises "gauge over counter"
          (Invalid_argument "Metrics: \"x\" already registered with another kind")
          (fun () -> ignore (Metrics.gauge m "x")));
    Alcotest.test_case "histogram log2 bucketing" `Quick (fun () ->
        let m = Metrics.create () in
        let h = Metrics.histogram m "h" in
        List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 1000 ];
        check "count" 6 (Metrics.histogram_count h);
        check "sum" 1010 (Metrics.histogram_sum h);
        let buckets = Metrics.histogram_bucket_list h in
        (* 0 -> (<=0); 1 -> [1,2); 2,3 -> [2,4); 4 -> [4,8); 1000 -> [512,1024) *)
        Alcotest.(check (list (triple int int int)))
          "buckets"
          [
            (min_int, 1, 1); (1, 2, 1); (2, 4, 2); (4, 8, 1); (512, 1024, 1);
          ]
          buckets);
    Alcotest.test_case "merge adds counters, gauges and histograms" `Quick
      (fun () ->
        let mk c g obs =
          let m = Metrics.create () in
          Metrics.add (Metrics.counter m "c") c;
          Metrics.set (Metrics.gauge m "g") g;
          List.iter (Metrics.observe (Metrics.histogram m "h")) obs;
          m
        in
        let into = mk 10 1 [ 1; 2 ] in
        Metrics.merge ~into (mk 32 2 [ 2; 1000 ]);
        check "counters add" 42 (Metrics.counter_value (Metrics.counter into "c"));
        check "gauges add" 3 (Metrics.gauge_value (Metrics.gauge into "g"));
        let h = Metrics.histogram into "h" in
        check "histogram count" 4 (Metrics.histogram_count h);
        check "histogram sum" 1005 (Metrics.histogram_sum h);
        (* merging a registry with disjoint names creates the cells *)
        let other = Metrics.create () in
        Metrics.incr (Metrics.counter other "only.there");
        Metrics.merge ~into other;
        check "new name lands" 1
          (Metrics.counter_value (Metrics.counter into "only.there")));
    Alcotest.test_case "rendering is sorted and deterministic" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.set (Metrics.gauge m "z.last") 1;
        Metrics.incr (Metrics.counter m "a.first");
        let rendered = Fmt.str "%a" Metrics.pp_table m in
        let idx needle =
          let n = String.length needle and len = String.length rendered in
          let rec go i =
            if i + n > len then Alcotest.failf "%s not rendered" needle
            else if String.sub rendered i n = needle then i
            else go (i + 1)
          in
          go 0
        in
        check_b "a before z" true (idx "a.first" < idx "z.last"));
    Alcotest.test_case "registry JSON is well-formed" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.incr (Metrics.counter m "quoted\"name");
        Metrics.observe (Metrics.histogram m "h") 5;
        match Json.well_formed (Metrics.to_json m) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

(* -- json ----------------------------------------------------------------- *)

let json_tests =
  [
    Alcotest.test_case "accepts valid documents" `Quick (fun () ->
        List.iter
          (fun s ->
            match Json.well_formed s with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%S rejected: %s" s e)
          [
            "{}";
            "[]";
            "  null ";
            {|{"a":[1,-2.5e3,true,false,null],"b":{"c":"d\neA"}}|};
            {|"lone string"|};
            "3.14";
          ]);
    Alcotest.test_case "rejects malformed documents" `Quick (fun () ->
        List.iter
          (fun s ->
            match Json.well_formed s with
            | Ok () -> Alcotest.failf "%S accepted" s
            | Error _ -> ())
          [
            "";
            "{";
            "[1,]";
            {|{"a":}|};
            {|{"a":1,}|};
            "[1] trailing";
            {|"unterminated|};
            "{1:2}";
            "01";
          ]);
    Alcotest.test_case "escape round-trips through the checker" `Quick (fun () ->
        let s = "quote\" backslash\\ newline\n ctrl\x01" in
        match Json.well_formed (Printf.sprintf "\"%s\"" (Json.escape s)) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

(* -- series ---------------------------------------------------------------- *)

let series_tests =
  [
    Alcotest.test_case "records rows in order" `Quick (fun () ->
        let s = Series.create ~capacity:8 ~columns:[ "a"; "b" ] in
        Series.sample s [| 1; 2 |];
        Series.sample s [| 3; 4 |];
        check "length" 2 (Series.length s);
        Alcotest.(check (list int)) "column a" [ 1; 3 ] (Series.column s "a");
        Alcotest.(check (list int)) "column b" [ 2; 4 ] (Series.column s "b"));
    Alcotest.test_case "ring buffer wraps, keeping the newest rows" `Quick
      (fun () ->
        let s = Series.create ~capacity:3 ~columns:[ "v" ] in
        for v = 1 to 10 do
          Series.sample s [| v |]
        done;
        check "total counts everything" 10 (Series.total s);
        check "length capped" 3 (Series.length s);
        Alcotest.(check (list int)) "newest retained" [ 8; 9; 10 ]
          (Series.column s "v");
        check "oldest retained row" 8 (Series.get s 0).(0);
        Alcotest.(check (option (array int))) "last" (Some [| 10 |])
          (Series.last s));
    Alcotest.test_case "arity mismatch raises" `Quick (fun () ->
        let s = Series.create ~capacity:2 ~columns:[ "a"; "b" ] in
        Alcotest.check_raises "short row"
          (Invalid_argument "Series.sample: row arity does not match columns")
          (fun () -> Series.sample s [| 1 |]));
    Alcotest.test_case "sampled row is copied" `Quick (fun () ->
        let s = Series.create ~capacity:2 ~columns:[ "a" ] in
        let row = [| 1 |] in
        Series.sample s row;
        row.(0) <- 99;
        check "unaffected" 1 (Series.get s 0).(0));
    Alcotest.test_case "csv has header plus one line per row" `Quick (fun () ->
        let s = Series.create ~capacity:4 ~columns:[ "a"; "b" ] in
        Series.sample s [| 1; 2 |];
        check_s "csv" "a,b\n1,2\n" (Series.to_csv s));
    Alcotest.test_case "json export is well-formed" `Quick (fun () ->
        let s = Series.create ~capacity:4 ~columns:[ "a"; "b" ] in
        Series.sample s [| 1; 2 |];
        Series.sample s [| 3; 4 |];
        match Json.well_formed (Series.to_json s) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

(* -- trace ------------------------------------------------------------------ *)

let trace_tests =
  [
    Alcotest.test_case "null sink is disabled and collects nothing" `Quick
      (fun () ->
        let t = Trace.null in
        check_b "disabled" false (Trace.enabled t);
        Trace.emit t ~cat:"c" ~name:"n" ~pid:1 [];
        check "no events" 0 (Trace.count t);
        Alcotest.(check (list reject)) "empty" [] (Trace.events t));
    Alcotest.test_case "collector records events with the clock" `Quick
      (fun () ->
        let t = Trace.collector () in
        check_b "enabled" true (Trace.enabled t);
        let now = ref 0 in
        Trace.set_clock t (fun () -> !now);
        now := 5;
        Trace.emit t ~cat:"engine" ~name:"tag_insert" ~pid:7
          [ ("bytes", Int 3) ];
        now := 9;
        Trace.emit t ~cat:"detector" ~name:"flag" ~pid:7 [];
        check "count" 2 (Trace.count t);
        (match Trace.events t with
        | [ e1; e2 ] ->
          check "ts1" 5 e1.Trace.ev_ts;
          check "ts2" 9 e2.Trace.ev_ts;
          check_s "name1" "tag_insert" e1.Trace.ev_name
        | _ -> Alcotest.fail "expected two events");
        check "by_category" 1 (List.length (Trace.by_category t "detector")));
    Alcotest.test_case "collector drops past its limit" `Quick (fun () ->
        let t = Trace.collector ~limit:2 () in
        for i = 1 to 5 do
          Trace.emit t ~cat:"c" ~name:"n" ~pid:i []
        done;
        check "kept" 2 (Trace.count t);
        check "dropped" 3 (Trace.dropped t));
    Alcotest.test_case "chrome export is well-formed JSON" `Quick (fun () ->
        let t = Trace.collector () in
        Trace.emit t ~cat:"engine" ~name:"tag \"quoted\"" ~pid:1
          [ ("s", Str "a\nb"); ("i", Int 3); ("b", Bool true) ];
        match Json.well_formed (Trace.to_chrome_json t) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

(* -- profile ----------------------------------------------------------------- *)

(* A deterministic profiler: a mutable fake clock the tests advance by
   hand, so every wall-time assertion is exact. *)
let fake_profile () =
  let now = ref 0 in
  (Profile.create ~clock:(fun () -> !now) (), now)

let find_span profile path =
  match
    List.find_opt (fun (s : Profile.span) -> s.sp_path = path)
      (Profile.spans profile)
  with
  | Some s -> s
  | None -> Alcotest.failf "span %s not recorded" path

let profile_tests =
  [
    Alcotest.test_case "disabled profiler is inert" `Quick (fun () ->
        let p = Profile.disabled in
        check_b "disabled" false (Profile.enabled p);
        Profile.enter p "a";
        Profile.exit p;
        check "with_span is just the thunk" 42
          (Profile.with_span p "b" (fun () -> 42));
        Alcotest.(check (list reject)) "no spans" [] (Profile.spans p);
        check "total" 0 (Profile.total_ns p));
    Alcotest.test_case "fake clock: nesting, totals, self time" `Quick
      (fun () ->
        let p, now = fake_profile () in
        Profile.enter p "outer";
        now := 10;
        Profile.enter p "inner";
        now := 30;
        Profile.exit p;
        (* inner: 20ns *)
        now := 100;
        Profile.exit p;
        (* outer: 100ns inclusive *)
        let outer = find_span p "outer" and inner = find_span p "outer/inner" in
        check "outer depth" 0 outer.sp_depth;
        check "inner depth" 1 inner.sp_depth;
        check "outer total" 100 outer.sp_total_ns;
        check "inner total" 20 inner.sp_total_ns;
        check "outer self = total - child" 80 outer.sp_self_ns;
        check "inner self" 20 inner.sp_self_ns;
        check "coverage denominator" 100 (Profile.total_ns p));
    Alcotest.test_case "same name under two parents is two nodes" `Quick
      (fun () ->
        let p, now = fake_profile () in
        let span name ns f =
          Profile.enter p name;
          now := !now + ns;
          f ();
          Profile.exit p
        in
        span "record" 5 (fun () -> span "vm.step" 3 (fun () -> ()));
        span "replay" 7 (fun () -> span "vm.step" 4 (fun () -> ()));
        check "record/vm.step" 3 (find_span p "record/vm.step").sp_total_ns;
        check "replay/vm.step" 4 (find_span p "replay/vm.step").sp_total_ns;
        (* preorder, first-entered order — deterministic *)
        Alcotest.(check (list string))
          "span order"
          [ "record"; "record/vm.step"; "replay"; "replay/vm.step" ]
          (List.map (fun (s : Profile.span) -> s.sp_path) (Profile.spans p)));
    Alcotest.test_case "call counts aggregate on one node" `Quick (fun () ->
        let p, now = fake_profile () in
        for _ = 1 to 5 do
          Profile.with_span p "hot" (fun () -> now := !now + 2)
        done;
        let s = find_span p "hot" in
        check "count" 5 s.sp_count;
        check "total" 10 s.sp_total_ns);
    Alcotest.test_case "with_span closes the span on exceptions" `Quick
      (fun () ->
        let p, now = fake_profile () in
        (try
           Profile.with_span p "risky" (fun () ->
               now := 4;
               failwith "boom")
         with Failure _ -> ());
        Profile.with_span p "after" (fun () -> ());
        check "risky closed at depth 0" 0 (find_span p "risky").sp_depth;
        check "sibling, not child" 0 (find_span p "after").sp_depth);
    Alcotest.test_case "unbalanced exit is ignored" `Quick (fun () ->
        let p, _ = fake_profile () in
        Profile.exit p;
        Profile.with_span p "a" (fun () -> ());
        check "still records" 1 (List.length (Profile.spans p)));
    Alcotest.test_case "merge adds matching paths, creates missing ones"
      `Quick (fun () ->
        let mk spec =
          let p, now = fake_profile () in
          List.iter
            (fun (name, ns) -> Profile.with_span p name (fun () -> now := !now + ns))
            spec;
          p
        in
        let into = mk [ ("a", 10); ("b", 5) ] in
        Profile.merge ~into (mk [ ("a", 32); ("c", 7) ]);
        check "a added" 42 (find_span into "a").sp_total_ns;
        check "a count" 2 (find_span into "a").sp_count;
        check "b kept" 5 (find_span into "b").sp_total_ns;
        check "c created" 7 (find_span into "c").sp_total_ns;
        (* merge with disabled on either side is a no-op, not a crash *)
        Profile.merge ~into Profile.disabled;
        Profile.merge ~into:Profile.disabled into;
        check "unchanged" 42 (find_span into "a").sp_total_ns);
    Alcotest.test_case "merge is commutative in the accumulated numbers"
      `Quick (fun () ->
        let mk spec =
          let p, now = fake_profile () in
          List.iter
            (fun (name, ns) -> Profile.with_span p name (fun () -> now := !now + ns))
            spec;
          p
        in
        let numbers p =
          List.map
            (fun (s : Profile.span) -> (s.sp_path, s.sp_count, s.sp_total_ns))
            (Profile.spans p)
          |> List.sort compare
        in
        let ab = mk [ ("x", 1); ("y", 2) ] in
        Profile.merge ~into:ab (mk [ ("y", 3); ("z", 4) ]);
        let ba = mk [ ("y", 3); ("z", 4) ] in
        Profile.merge ~into:ba (mk [ ("x", 1); ("y", 2) ]);
        Alcotest.(check (list (triple string int int)))
          "same accumulated numbers" (numbers ab) (numbers ba));
    Alcotest.test_case "hotspot table sorts by self time" `Quick (fun () ->
        let p, now = fake_profile () in
        Profile.with_span p "cheap" (fun () -> now := !now + 1);
        Profile.with_span p "costly" (fun () -> now := !now + 99);
        let rendered = Fmt.str "%a" (Profile.pp_hotspots ?top:None) p in
        let idx needle =
          let n = String.length needle and len = String.length rendered in
          let rec go i =
            if i + n > len then Alcotest.failf "%s not rendered" needle
            else if String.sub rendered i n = needle then i
            else go (i + 1)
          in
          go 0
        in
        check_b "costly first" true (idx "costly" < idx "cheap"));
    Alcotest.test_case "profile JSON is well-formed" `Quick (fun () ->
        let p, now = fake_profile () in
        Profile.with_span p "a \"quoted\" name" (fun () ->
            now := 3;
            Profile.with_span p "child" (fun () -> now := 5));
        match Json.well_formed (Profile.to_json p) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

(* -- sink -------------------------------------------------------------------- *)

(* Emit one line of every schema type onto [t]. *)
let emit_all_types t =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "c");
  Sink.metric_snapshot t ~source:"test" m;
  Sink.trace_event t ~sample:"s0"
    {
      Trace.ev_name = "tag_insert";
      ev_cat = "engine";
      ev_ts = 3;
      ev_pid = 0;
      ev_tid = 7;
      ev_args = [ ("bytes", Trace.Int 4); ("who", Trace.Str "a\"b") ];
    };
  Sink.series_point t ~sample:"s0" ~columns:[ "tick"; "tainted" ]
    ~row:[| 64; 12 |];
  let p = Profile.create ~clock:(fun () -> 0) () in
  Profile.with_span p "replay" (fun () -> ());
  Sink.profile_span t ~source:"test" (List.hd (Profile.spans p));
  Sink.job_lifecycle t ~job:"s0" ~worker:0 ~event:"finish" ~verdict:"flagged"
    ~wall_s:0.25 ();
  Sink.graph_flag t ~sample:"s0" ~flag_sites:1 ~nodes:10 ~edges:9
    ~slice_nodes:4 ~slice_origins:1 ~netflow_origin:true

let all_types =
  [
    "metric_snapshot"; "trace_event"; "series_point"; "profile_span";
    "job_lifecycle"; "graph_flag";
  ]

let contains ~needle hay =
  let n = String.length needle and len = String.length hay in
  let rec go i =
    i + n <= len && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let sink_tests =
  [
    Alcotest.test_case "null sink is inert" `Quick (fun () ->
        let t = Sink.null in
        check_b "disabled" false (Sink.enabled t);
        emit_all_types t;
        check "events" 0 (Sink.events t);
        check "dropped" 0 (Sink.dropped t);
        check_s "contents" "" (Sink.contents t));
    Alcotest.test_case "every emitter appends one versioned typed line" `Quick
      (fun () ->
        let t = Sink.create () in
        check_b "enabled" true (Sink.enabled t);
        emit_all_types t;
        check "six lines" 6 (Sink.events t);
        List.iter2
          (fun ty line ->
            (match Json.well_formed line with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s line malformed: %s" ty e);
            check_b (ty ^ " has version") true
              (contains ~needle:(Printf.sprintf {|"v":%d|} Sink.schema_version)
                 line);
            check_b (ty ^ " typed") true
              (contains ~needle:(Printf.sprintf {|"type":"%s"|} ty) line))
          all_types (Sink.lines t));
    Alcotest.test_case "whole stream passes the JSONL checker" `Quick
      (fun () ->
        let t = Sink.create () in
        emit_all_types t;
        match Json.well_formed_lines (Sink.contents t) with
        | Ok n -> check "line count" 6 n
        | Error (line, e) -> Alcotest.failf "line %d: %s" line e);
    Alcotest.test_case "bounded buffering counts drops explicitly" `Quick
      (fun () ->
        let t = Sink.create ~limit:2 () in
        for i = 1 to 5 do
          Sink.job_lifecycle t ~job:(string_of_int i) ~worker:0 ~event:"submit"
            ()
        done;
        check "kept" 2 (Sink.events t);
        check "dropped" 3 (Sink.dropped t);
        check "buffer holds the oldest" 2 (List.length (Sink.lines t)));
    Alcotest.test_case "jsonl checker pinpoints the offending line" `Quick
      (fun () ->
        match Json.well_formed_lines "{}\n{\"a\":1}\nnot json\n{}\n" with
        | Ok _ -> Alcotest.fail "accepted a malformed stream"
        | Error (line, _) -> check "line number" 3 line);
  ]

(* -- metrics merge properties (QCheck) --------------------------------------- *)

(* A shard is a random bag of operations against a fixed name/kind pool —
   the shape of per-job registries a campaign merges.  Whatever order the
   driver folds shards in, the rendered registry must be byte-identical:
   merge is commutative and associative in every cell. *)
let arb_shard =
  QCheck.Gen.(
    list_size (int_range 0 20)
      (triple (int_range 0 2) (int_range 0 3) (int_range 0 1000)))

let build_shard ops =
  let m = Metrics.create () in
  List.iter
    (fun (kind, idx, v) ->
      match kind with
      | 0 -> Metrics.add (Metrics.counter m (Printf.sprintf "c%d" idx)) v
      | 1 -> Metrics.set (Metrics.gauge m (Printf.sprintf "g%d" idx)) v
      | _ -> Metrics.observe (Metrics.histogram m (Printf.sprintf "h%d" idx)) v)
    ops;
  m

let merge_fingerprint shards =
  let into = Metrics.create () in
  List.iter (fun s -> Metrics.merge ~into (build_shard s)) shards;
  Metrics.to_json into

let merge_commutes =
  QCheck.Test.make ~count:200
    ~name:"Metrics.merge: any shard order renders byte-identically"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 5) arb_shard))
    (fun shards ->
      let reference = merge_fingerprint shards in
      (* reversal exercises commutativity; rotation, associativity of the
         left fold's grouping *)
      let rotate = function [] -> [] | x :: rest -> rest @ [ x ] in
      reference = merge_fingerprint (List.rev shards)
      && reference = merge_fingerprint (rotate shards))

let merge_associates =
  QCheck.Test.make ~count:200
    ~name:"Metrics.merge: pre-merging a subgroup changes nothing"
    (QCheck.make QCheck.Gen.(triple arb_shard arb_shard arb_shard))
    (fun (a, b, c) ->
      let flat = merge_fingerprint [ a; b; c ] in
      (* (a <- b) then c, vs a then (b <- c) *)
      let left =
        let ab = build_shard a in
        Metrics.merge ~into:ab (build_shard b);
        let into = Metrics.create () in
        Metrics.merge ~into ab;
        Metrics.merge ~into (build_shard c);
        Metrics.to_json into
      in
      let right =
        let bc = build_shard b in
        Metrics.merge ~into:bc (build_shard c);
        let into = Metrics.create () in
        Metrics.merge ~into (build_shard a);
        Metrics.merge ~into bc;
        Metrics.to_json into
      in
      flat = left && flat = right)

let merge_property_tests =
  [
    QCheck_alcotest.to_alcotest merge_commutes;
    QCheck_alcotest.to_alcotest merge_associates;
  ]

(* -- overhead regression ------------------------------------------------------ *)

(* The zero-cost-when-disabled contract: running the full pipeline with
   every observability argument explicitly disabled must be
   indistinguishable — byte-identical report, same tick counts — from
   the defaults.  Each run gets a fresh interner so the comparison is
   exact. *)
let overhead_tests =
  [
    Alcotest.test_case "disabled obs leaves the analysis byte-identical"
      `Slow (fun () ->
        let sample =
          match Faros_corpus.Registry.find "reflective_dll_inject" with
          | Some s -> s
          | None -> Alcotest.fail "missing corpus sample"
        in
        let run f =
          Faros_dift.Prov_intern.with_store
            (Faros_dift.Prov_intern.create_store ())
            (fun () ->
              let outcome = f sample.scenario in
              let json =
                Core.Report.to_json ~store:outcome.Core.Analysis.faros.engine.store
                  ~name_of_asid:
                    (Core.Faros_plugin.name_of_asid outcome.faros.kernel)
                  outcome.report
              in
              (json, outcome.replay.replay_ticks, outcome.replay.replay_syscalls))
        in
        let j_default, ticks_default, sys_default =
          run (fun scn -> Faros_corpus.Scenario.analyze scn)
        in
        let j_disabled, ticks_disabled, sys_disabled =
          run (fun scn ->
              Faros_corpus.Scenario.analyze ~profile:Profile.disabled
                ~sink:Sink.null ~trace_sink:Trace.null scn)
        in
        check_s "report JSON byte-identical" j_default j_disabled;
        check "ticks" ticks_default ticks_disabled;
        check "syscalls" sys_default sys_disabled);
    Alcotest.test_case "profiling changes no analysis output" `Slow (fun () ->
        let sample =
          match Faros_corpus.Registry.find "process_hollowing" with
          | Some s -> s
          | None -> Alcotest.fail "missing corpus sample"
        in
        let run f =
          Faros_dift.Prov_intern.with_store
            (Faros_dift.Prov_intern.create_store ())
            (fun () ->
              let outcome = f sample.scenario in
              ( Core.Report.summary outcome.Core.Analysis.report,
                outcome.replay.replay_ticks ))
        in
        let plain = run (fun scn -> Faros_corpus.Scenario.analyze scn) in
        let profile = Profile.create () in
        let sink = Sink.create () in
        let profiled =
          run (fun scn -> Faros_corpus.Scenario.analyze ~profile ~sink scn)
        in
        Alcotest.(check (pair string int))
          "verdict and ticks unchanged" plain profiled;
        (* and the observability actually observed something *)
        check_b "spans recorded" true (Profile.spans profile <> []);
        check_b "covered time positive" true (Profile.total_ns profile > 0));
  ]

(* -- replay-level telemetry -------------------------------------------------- *)

let sorted_ascending xs = List.sort compare xs = xs

let telemetry_tests =
  [
    Alcotest.test_case "sampled series is consistent with final engine state"
      `Slow (fun () ->
        let sample =
          match Faros_corpus.Registry.find "reflective_dll_inject" with
          | Some s -> s
          | None -> Alcotest.fail "missing corpus sample"
        in
        let telemetry = Core.Telemetry.create () in
        let trace_sink = Faros_obs.Trace.collector () in
        let outcome =
          Faros_corpus.Scenario.analyze ~telemetry ~trace_sink sample.scenario
        in
        let series = Core.Telemetry.series telemetry in
        check_b "sampled at least twice" true (Series.total series >= 2);
        (* ticks are strictly increasing; a replay's taint only grows *)
        let ticks = Series.column series "tick" in
        check_b "ticks ascend" true (sorted_ascending ticks);
        let tainted = Series.column series "tainted_bytes" in
        check_b "tainted bytes monotone" true (sorted_ascending tainted);
        (* the forced final sample equals the end-of-replay state *)
        let final = Option.get (Series.last series) in
        let col name =
          let rec idx i = function
            | [] -> Alcotest.failf "no column %s" name
            | c :: _ when c = name -> final.(i)
            | _ :: rest -> idx (i + 1) rest
          in
          idx 0 (Series.columns series)
        in
        check "final tainted bytes" (Faros_dift.Shadow.tainted_bytes
          outcome.faros.engine.shadow)
          (col "tainted_bytes");
        check "final tick" outcome.replay.replay_ticks (col "tick");
        check "final instrs"
          (Faros_dift.Engine.instrs_processed outcome.faros.engine)
          (col "instrs");
        (* the trace sink saw the events the acceptance demands *)
        let has cat name =
          List.exists
            (fun (e : Trace.event) -> e.ev_cat = cat && e.ev_name = name)
            (Trace.events trace_sink)
        in
        check_b "tag_insert events" true (has "engine" "tag_insert");
        check_b "confluence_check events" true
          (has "detector" "confluence_check");
        check_b "flag events" true (has "detector" "flag");
        check_b "syscall events" true
          (List.exists
             (fun (e : Trace.event) -> e.ev_cat = "syscall")
             (Trace.events trace_sink));
        (* event timestamps are valid replay ticks *)
        check_b "timestamps within replay" true
          (List.for_all
             (fun (e : Trace.event) ->
               e.ev_ts >= 0 && e.ev_ts <= outcome.replay.replay_ticks)
             (Trace.events trace_sink)));
    Alcotest.test_case "disabled sinks leave no observable trace" `Slow
      (fun () ->
        let sample =
          match Faros_corpus.Registry.find "reflective_dll_inject" with
          | Some s -> s
          | None -> Alcotest.fail "missing corpus sample"
        in
        (* default analyze: null sink everywhere; the kernel's sink stays
           disabled and nothing is buffered anywhere *)
        let outcome = Faros_corpus.Scenario.analyze sample.scenario in
        check_b "plugin sink disabled" false
          (Trace.enabled outcome.faros.trace);
        check "plugin sink empty" 0 (Trace.count outcome.faros.trace);
        check_b "still flags" true (Core.Report.flagged outcome.report));
  ]

let () =
  Alcotest.run "faros_obs"
    [
      ("metrics", metrics_tests);
      ("json", json_tests);
      ("series", series_tests);
      ("trace", trace_tests);
      ("profile", profile_tests);
      ("sink", sink_tests);
      ("merge-properties", merge_property_tests);
      ("overhead", overhead_tests);
      ("telemetry", telemetry_tests);
    ]
