(* Tests for the VM substrate: words, instruction encoding, the assembler,
   physical memory, the MMU and the CPU's execution semantics. *)

open Faros_vm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- word ---------------------------------------------------------------- *)

let word_tests =
  [
    Alcotest.test_case "mask wraps" `Quick (fun () ->
        check "of_int" 0 (Word.of_int 0x100000000);
        check "add wraps" 0 (Word.add 0xFFFFFFFF 1);
        check "sub wraps" 0xFFFFFFFF (Word.sub 0 1));
    Alcotest.test_case "signed reinterpretation" `Quick (fun () ->
        check "negative" (-1) (Word.to_signed 0xFFFFFFFF);
        check "positive" 5 (Word.to_signed 5);
        check "min int" (-0x80000000) (Word.to_signed 0x80000000));
    Alcotest.test_case "shifts saturate at 32" `Quick (fun () ->
        check "shl 32" 0 (Word.shift_left 1 32);
        check "shr 32" 0 (Word.shift_right 0xFFFFFFFF 32);
        check "shl 31" 0x80000000 (Word.shift_left 1 31));
    Alcotest.test_case "truncate widths" `Quick (fun () ->
        check "w1" 0xEF (Word.truncate ~width:1 0xDEADBEEF);
        check "w2" 0xBEEF (Word.truncate ~width:2 0xDEADBEEF);
        check "w4" 0xDEADBEEF (Word.truncate ~width:4 0xDEADBEEF));
    Alcotest.test_case "logical ops mask" `Quick (fun () ->
        check "lognot" 0xFFFFFFFE (Word.lognot 1);
        check "xor" 0 (Word.logxor 0xAAAAAAAA 0xAAAAAAAA));
  ]

(* -- encode / decode ----------------------------------------------------- *)

let arb_reg = QCheck.Gen.int_range 0 (Isa.num_regs - 1)

let arb_addr =
  QCheck.Gen.(
    let* base = opt arb_reg in
    let* index = opt arb_reg in
    let* scale = oneofl [ 1; 2; 4 ] in
    let* disp = int_range 0 0xFFFFFF in
    return { Isa.base; index; scale; disp })

let arb_width = QCheck.Gen.oneofl [ 1; 2; 4 ]

let arb_instr : Isa.t QCheck.Gen.t =
  QCheck.Gen.(
    let* imm = int_range 0 0xFFFFFF in
    let* r1 = arb_reg in
    let* r2 = arb_reg in
    let* a = arb_addr in
    let* w = arb_width in
    let* sh = int_range 0 31 in
    oneofl
      [
        Isa.Nop;
        Halt;
        Mov_ri (r1, imm);
        Mov_rr (r1, r2);
        Load (w, r1, a);
        Store (w, a, r1);
        Lea (r1, a);
        Push r1;
        Pop r1;
        Add_rr (r1, r2);
        Add_ri (r1, imm);
        Sub_rr (r1, r2);
        Sub_ri (r1, imm);
        Mul_rr (r1, r2);
        And_rr (r1, r2);
        And_ri (r1, imm);
        Or_rr (r1, r2);
        Or_ri (r1, imm);
        Xor_rr (r1, r2);
        Xor_ri (r1, imm);
        Shl_ri (r1, sh);
        Shr_ri (r1, sh);
        Shl_rr (r1, r2);
        Shr_rr (r1, r2);
        Not_r r1;
        Cmp_rr (r1, r2);
        Cmp_ri (r1, imm);
        Test_rr (r1, r2);
        Jmp imm;
        Jz imm;
        Jnz imm;
        Jl imm;
        Jge imm;
        Jg imm;
        Jle imm;
        Call imm;
        Call_r r1;
        Jmp_r r1;
        Ret;
        Syscall;
        Int3;
      ])

let roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"encode/decode roundtrip"
    (QCheck.make arb_instr) (fun i ->
      let b = Encode.to_bytes i in
      let i', len = Decode.of_bytes b 0 in
      i = i' && len = Bytes.length b)

let length_prop =
  QCheck.Test.make ~count:500 ~name:"Encode.length matches emitted bytes"
    (QCheck.make arb_instr) (fun i ->
      Encode.length i = Bytes.length (Encode.to_bytes i))

let encode_tests =
  [
    Alcotest.test_case "invalid opcode rejected" `Quick (fun () ->
        Alcotest.check_raises "0xFF"
          (Decode.Invalid_opcode 0xFF)
          (fun () -> ignore (Decode.of_bytes (Bytes.of_string "\xFF") 0)));
    Alcotest.test_case "bad register rejected by encoder" `Quick (fun () ->
        match Encode.to_bytes (Isa.Push 12) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "scaled-index-base encodes scale" `Quick (fun () ->
        let a = Isa.indexed ~base:Isa.r1 ~scale:4 Isa.r2 in
        let i = Isa.Load (4, Isa.r0, a) in
        let i', _ = Decode.of_bytes (Encode.to_bytes i) 0 in
        Alcotest.(check bool) "roundtrip" true (i = i'));
    QCheck_alcotest.to_alcotest roundtrip_prop;
    QCheck_alcotest.to_alcotest length_prop;
  ]

(* -- assembler ----------------------------------------------------------- *)

let asm_tests =
  [
    Alcotest.test_case "labels resolve forward and back" `Quick (fun () ->
        let prog =
          Asm.assemble ~origin:0x1000
            [
              Asm.Label "a";
              Asm.Jmp_l "b";
              Asm.Label "b";
              Asm.Jmp_l "a";
            ]
        in
        check "a" 0x1000 (Asm.lookup prog "a");
        check "b" 0x1005 (Asm.lookup prog "b");
        let i, _ = Decode.of_bytes prog.code 0 in
        Alcotest.(check bool) "jmp to b" true (i = Isa.Jmp 0x1005));
    Alcotest.test_case "duplicate label rejected" `Quick (fun () ->
        Alcotest.check_raises "dup" (Asm.Duplicate_label "x") (fun () ->
            ignore (Asm.assemble ~origin:0 [ Asm.Label "x"; Asm.Label "x" ])));
    Alcotest.test_case "undefined label rejected" `Quick (fun () ->
        Alcotest.check_raises "undef" (Asm.Undefined_label "nope") (fun () ->
            ignore (Asm.assemble ~origin:0 [ Asm.Jmp_l "nope" ])));
    Alcotest.test_case "align pads to boundary" `Quick (fun () ->
        let prog =
          Asm.assemble ~origin:0
            [ Asm.Bytes "abc"; Asm.Align 4; Asm.Label "here"; Asm.U32 7 ]
        in
        check "here" 4 (Asm.lookup prog "here");
        check "len" 8 (Asm.length prog));
    Alcotest.test_case "align at boundary is a no-op" `Quick (fun () ->
        let prog =
          Asm.assemble ~origin:0 [ Asm.Bytes "abcd"; Asm.Align 4; Asm.Label "x" ]
        in
        check "x" 4 (Asm.lookup prog "x"));
    Alcotest.test_case "u32_label emits the address" `Quick (fun () ->
        let prog =
          Asm.assemble ~origin:0x400000
            [ Asm.U32_label "t"; Asm.Label "t"; Asm.Bytes "z" ]
        in
        let v =
          Char.code (Bytes.get prog.code 0)
          lor (Char.code (Bytes.get prog.code 1) lsl 8)
          lor (Char.code (Bytes.get prog.code 2) lsl 16)
          lor (Char.code (Bytes.get prog.code 3) lsl 24)
        in
        check "value" 0x400004 v);
    Alcotest.test_case "space emits zeros" `Quick (fun () ->
        let prog = Asm.assemble ~origin:0 [ Asm.Space 5 ] in
        check "len" 5 (Asm.length prog);
        Bytes.iter (fun c -> check "zero" 0 (Char.code c)) prog.code);
    Alcotest.test_case "mov_label loads label address" `Quick (fun () ->
        let prog =
          Asm.assemble ~origin:0x100
            [ Asm.Mov_label (Isa.r3, "d"); Asm.Label "d"; Asm.U32 0 ]
        in
        let i, _ = Decode.of_bytes prog.code 0 in
        Alcotest.(check bool) "mov" true (i = Isa.Mov_ri (Isa.r3, 0x106)));
  ]

(* -- physical memory and MMU ---------------------------------------------- *)

let mem_tests =
  [
    Alcotest.test_case "frame allocation is zeroed" `Quick (fun () ->
        let m = Phys_mem.create () in
        let pfn = Phys_mem.alloc_frame m in
        check "zero" 0 (Phys_mem.read_u8 m (pfn * Phys_mem.page_size)));
    Alcotest.test_case "read/write widths little-endian" `Quick (fun () ->
        let m = Phys_mem.create () in
        let _ = Phys_mem.alloc_frame m in
        Phys_mem.write ~width:4 m 0 0xDEADBEEF;
        check "u8" 0xEF (Phys_mem.read_u8 m 0);
        check "u16" 0xBEEF (Phys_mem.read ~width:2 m 0);
        check "u32" 0xDEADBEEF (Phys_mem.read ~width:4 m 0));
    Alcotest.test_case "bad frame raises" `Quick (fun () ->
        let m = Phys_mem.create () in
        Alcotest.check_raises "bad" (Phys_mem.Bad_frame 9) (fun () ->
            ignore (Phys_mem.read_u8 m (9 * Phys_mem.page_size))));
    Alcotest.test_case "mmu translate and page fault" `Quick (fun () ->
        let m = Phys_mem.create () in
        let mmu = Mmu.create m in
        let s = Mmu.create_space mmu ~name:"p" in
        Mmu.map mmu s ~vaddr:0x400000 ~pages:2;
        Mmu.write_u8 mmu ~asid:s.asid 0x400005 0xAB;
        check "read" 0xAB (Mmu.read_u8 mmu ~asid:s.asid 0x400005);
        Alcotest.check_raises "fault"
          (Mmu.Page_fault { asid = s.asid; vaddr = 0x500000 })
          (fun () -> ignore (Mmu.read_u8 mmu ~asid:s.asid 0x500000)));
    Alcotest.test_case "cross-page access" `Quick (fun () ->
        let m = Phys_mem.create () in
        let mmu = Mmu.create m in
        let s = Mmu.create_space mmu ~name:"p" in
        Mmu.map mmu s ~vaddr:0x400000 ~pages:2;
        let boundary = 0x400000 + Phys_mem.page_size - 2 in
        Mmu.write ~width:4 mmu ~asid:s.asid boundary 0x11223344;
        check "read back" 0x11223344 (Mmu.read ~width:4 mmu ~asid:s.asid boundary));
    Alcotest.test_case "shared frames alias across spaces" `Quick (fun () ->
        let m = Phys_mem.create () in
        let mmu = Mmu.create m in
        let a = Mmu.create_space mmu ~name:"a" in
        let b = Mmu.create_space mmu ~name:"b" in
        Mmu.map mmu a ~vaddr:0x1000 ~pages:1;
        Mmu.map_frames mmu b ~vaddr:0x8000 (Mmu.frames_of a ~vaddr:0x1000 ~pages:1);
        Mmu.write_u8 mmu ~asid:a.asid 0x1004 0x42;
        check "alias" 0x42 (Mmu.read_u8 mmu ~asid:b.asid 0x8004);
        check "same phys" (Mmu.translate mmu ~asid:a.asid 0x1004)
          (Mmu.translate mmu ~asid:b.asid 0x8004));
    Alcotest.test_case "unmap removes pages" `Quick (fun () ->
        let m = Phys_mem.create () in
        let mmu = Mmu.create m in
        let s = Mmu.create_space mmu ~name:"p" in
        Mmu.map mmu s ~vaddr:0x1000 ~pages:1;
        Mmu.unmap mmu s ~vaddr:0x1000 ~pages:1;
        check_bool "unmapped" false (Mmu.is_mapped s ~vaddr:0x1000));
    Alcotest.test_case "mapped_ranges coalesces" `Quick (fun () ->
        let m = Phys_mem.create () in
        let mmu = Mmu.create m in
        let s = Mmu.create_space mmu ~name:"p" in
        Mmu.map mmu s ~vaddr:0x1000 ~pages:2;
        Mmu.map mmu s ~vaddr:0x5000 ~pages:1;
        let ranges = Mmu.mapped_ranges s in
        Alcotest.(check (list (pair int int)))
          "ranges"
          [ (0x1000, 2 * Phys_mem.page_size); (0x5000, Phys_mem.page_size) ]
          ranges);
    Alcotest.test_case "phys_range is byte exact" `Quick (fun () ->
        let m = Phys_mem.create () in
        let mmu = Mmu.create m in
        let s = Mmu.create_space mmu ~name:"p" in
        Mmu.map mmu s ~vaddr:0x1000 ~pages:1;
        check "len" 4 (List.length (Mmu.phys_range mmu ~asid:s.asid 0x1000 4)));
  ]

(* -- CPU ------------------------------------------------------------------ *)

(* Run [items] to completion on a fresh machine; returns (cpu, machine,
   space). *)
let exec ?(max_steps = 10_000) items =
  let machine = Machine.create () in
  let space = Mmu.create_space machine.mmu ~name:"t" in
  Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:4;
  Mmu.map machine.mmu space ~vaddr:0x7F000 ~pages:4;
  let prog = Asm.assemble ~origin:0x1000 items in
  Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
  let cpu = Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:(0x7F000 + 0x3FF0) in
  let rec go n =
    if n >= max_steps then Alcotest.fail "program did not halt"
    else
      match Machine.step machine cpu with
      | Ok _ when cpu.halted -> ()
      | Ok _ -> go (n + 1)
      | Error f -> Alcotest.failf "fault: %a" Cpu.pp_fault f
  in
  go 0;
  (cpu, machine, space)

let i x = Asm.I x

let cpu_tests =
  [
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r0, 7));
              i (Isa.Mov_ri (Isa.r1, 5));
              i (Isa.Add_rr (Isa.r0, Isa.r1));
              i (Isa.Mul_rr (Isa.r0, Isa.r1));
              i (Isa.Sub_ri (Isa.r0, 10));
              i Isa.Halt;
            ]
        in
        check "r0" 50 (Cpu.get cpu Isa.r0));
    Alcotest.test_case "logic and shifts" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r0, 0xF0));
              i (Isa.Or_ri (Isa.r0, 0x0F));
              i (Isa.Shl_ri (Isa.r0, 8));
              i (Isa.Shr_ri (Isa.r0, 4));
              i (Isa.And_ri (Isa.r0, 0xFF0));
              i (Isa.Not_r Isa.r0);
              i Isa.Halt;
            ]
        in
        check "r0" (Word.lognot 0xFF0) (Cpu.get cpu Isa.r0));
    Alcotest.test_case "xor self zeroes" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r2, 123));
              i (Isa.Xor_rr (Isa.r2, Isa.r2));
              i Isa.Halt;
            ]
        in
        check "r2" 0 (Cpu.get cpu Isa.r2));
    Alcotest.test_case "load/store with scaled index" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r1, 0x2000));
              i (Isa.Mov_ri (Isa.r2, 3));
              i (Isa.Mov_ri (Isa.r3, 0xAB));
              i (Isa.Store (1, Isa.indexed ~base:Isa.r1 ~scale:4 Isa.r2, Isa.r3));
              i (Isa.Load (1, Isa.r4, Isa.abs (0x2000 + 12)));
              i Isa.Halt;
            ]
        in
        check "r4" 0xAB (Cpu.get cpu Isa.r4));
    Alcotest.test_case "store truncates to width" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r1, 0x11223344));
              i (Isa.Store (2, Isa.abs 0x2000, Isa.r1));
              i (Isa.Load (4, Isa.r2, Isa.abs 0x2000));
              i Isa.Halt;
            ]
        in
        check "r2" 0x3344 (Cpu.get cpu Isa.r2));
    Alcotest.test_case "conditional branches (signed)" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r0, 0xFFFFFFFF)) (* -1 *);
              i (Isa.Cmp_ri (Isa.r0, 1));
              Asm.Jl_l "less";
              i (Isa.Mov_ri (Isa.r1, 111));
              i Isa.Halt;
              Asm.Label "less";
              i (Isa.Mov_ri (Isa.r1, 222));
              i Isa.Halt;
            ]
        in
        check "took signed-less branch" 222 (Cpu.get cpu Isa.r1));
    Alcotest.test_case "loop with counter" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r0, 0));
              i (Isa.Mov_ri (Isa.r1, 10));
              Asm.Label "loop";
              i (Isa.Add_ri (Isa.r0, 2));
              i (Isa.Sub_ri (Isa.r1, 1));
              i (Isa.Cmp_ri (Isa.r1, 0));
              Asm.Jnz_l "loop";
              i Isa.Halt;
            ]
        in
        check "r0" 20 (Cpu.get cpu Isa.r0));
    Alcotest.test_case "call/ret and stack" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r0, 1));
              Asm.Call_l "f";
              i (Isa.Add_ri (Isa.r0, 100));
              i Isa.Halt;
              Asm.Label "f";
              i (Isa.Add_ri (Isa.r0, 10));
              i Isa.Ret;
            ]
        in
        check "r0" 111 (Cpu.get cpu Isa.r0));
    Alcotest.test_case "push/pop preserve values" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r0, 42));
              i (Isa.Push Isa.r0);
              i (Isa.Mov_ri (Isa.r0, 0));
              i (Isa.Pop Isa.r1);
              i Isa.Halt;
            ]
        in
        check "r1" 42 (Cpu.get cpu Isa.r1));
    Alcotest.test_case "lea computes effective address" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r1, 0x100));
              i (Isa.Mov_ri (Isa.r2, 4));
              i (Isa.Lea (Isa.r3, Isa.indexed ~base:Isa.r1 ~scale:2 ~disp:1 Isa.r2));
              i Isa.Halt;
            ]
        in
        check "r3" 0x109 (Cpu.get cpu Isa.r3));
    Alcotest.test_case "call through register" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              Asm.Mov_label (Isa.r5, "f");
              i (Isa.Call_r Isa.r5);
              i Isa.Halt;
              Asm.Label "f";
              i (Isa.Mov_ri (Isa.r0, 77));
              i Isa.Ret;
            ]
        in
        check "r0" 77 (Cpu.get cpu Isa.r0));
    Alcotest.test_case "page fault reported with address" `Quick (fun () ->
        let machine = Machine.create () in
        let space = Mmu.create_space machine.mmu ~name:"t" in
        Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:1;
        let prog =
          Asm.assemble ~origin:0x1000 [ i (Isa.Load (4, Isa.r0, Isa.abs 0xDEAD000)) ]
        in
        Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
        let cpu = Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:0 in
        (match Machine.step machine cpu with
        | Error (Cpu.Fault_page v) -> check "vaddr" 0xDEAD000 v
        | _ -> Alcotest.fail "expected page fault");
        check "pc unchanged" 0x1000 cpu.pc);
    Alcotest.test_case "invalid opcode faults" `Quick (fun () ->
        let machine = Machine.create () in
        let space = Mmu.create_space machine.mmu ~name:"t" in
        Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:1;
        Mmu.write_u8 machine.mmu ~asid:space.asid 0x1000 0xEE;
        let cpu = Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:0 in
        match Machine.step machine cpu with
        | Error (Cpu.Fault_decode pc) -> check "pc" 0x1000 pc
        | _ -> Alcotest.fail "expected decode fault");
    Alcotest.test_case "effects report loads and stores" `Quick (fun () ->
        let machine = Machine.create () in
        let space = Mmu.create_space machine.mmu ~name:"t" in
        Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:2;
        let prog =
          Asm.assemble ~origin:0x1000
            [
              i (Isa.Mov_ri (Isa.r1, 0x1800));
              i (Isa.Store (4, Isa.based Isa.r1, Isa.r1));
              i (Isa.Load (2, Isa.r2, Isa.based Isa.r1));
            ]
        in
        Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
        let cpu = Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:0 in
        let effects = ref [] in
        Machine.add_exec_hook machine (fun _ e -> effects := e :: !effects);
        for _ = 1 to 3 do
          match Machine.step machine cpu with
          | Ok _ -> ()
          | Error f -> Alcotest.failf "fault %a" Cpu.pp_fault f
        done;
        match List.rev !effects with
        | [ mov; store; load ] ->
          check "mov no mem" 0 (List.length mov.Cpu.e_loads + List.length mov.e_stores);
          (match store.e_stores with
          | [ acc ] ->
            check "store width" 4 acc.width;
            check "store vaddr" 0x1800 acc.vaddr
          | _ -> Alcotest.fail "store effects");
          (match load.e_loads with
          | [ acc ] -> check "load width" 2 acc.width
          | _ -> Alcotest.fail "load effects");
          check "code bytes reported" (Encode.length (Isa.Mov_ri (Isa.r1, 0)))
            (Array.length mov.e_code_paddrs)
        | _ -> Alcotest.fail "expected three effects");
    Alcotest.test_case "halted cpu refuses to step" `Quick (fun () ->
        let cpu, machine, _ = exec [ i Isa.Halt ] in
        match Machine.step machine cpu with
        | Error Cpu.Fault_halted -> ()
        | _ -> Alcotest.fail "expected halted fault");
    Alcotest.test_case "int3 reports breakpoint" `Quick (fun () ->
        let machine = Machine.create () in
        let space = Mmu.create_space machine.mmu ~name:"t" in
        Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:1;
        let prog = Asm.assemble ~origin:0x1000 [ i Isa.Int3 ] in
        Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
        let cpu = Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:0 in
        match Machine.step machine cpu with
        | Error Cpu.Fault_breakpoint -> ()
        | _ -> Alcotest.fail "expected breakpoint");
  ]

(* -- disassembler --------------------------------------------------------- *)

let disasm_tests =
  [
    Alcotest.test_case "renders operands" `Quick (fun () ->
        Alcotest.(check string)
          "load" "load4 r0, [r5+0x8]"
          (Disasm.to_string
             (Isa.Load (4, Isa.r0, Isa.based ~disp:8 Isa.r5)));
        Alcotest.(check string) "mov" "mov r1, 0x2a" (Disasm.to_string (Isa.Mov_ri (1, 42))));
    Alcotest.test_case "buffer disassembly stops at invalid" `Quick (fun () ->
        let buf = Bytes.of_string "\x00\x01\xFF" in
        let listing = Disasm.buffer buf in
        check "two instructions" 2 (List.length listing));
  ]


(* -- reference-interpreter property -------------------------------------- *)

(* A pure OCaml evaluator for straight-line ALU programs: the ground truth
   the CPU must agree with on randomly generated instruction sequences. *)
let reference_eval instrs =
  let regs = Array.make Isa.num_regs 0 in
  List.iter
    (fun (i : Isa.t) ->
      match i with
      | Mov_ri (r, v) -> regs.(r) <- Word.of_int v
      | Mov_rr (a, b) -> regs.(a) <- regs.(b)
      | Add_rr (a, b) -> regs.(a) <- Word.add regs.(a) regs.(b)
      | Add_ri (a, v) -> regs.(a) <- Word.add regs.(a) v
      | Sub_rr (a, b) -> regs.(a) <- Word.sub regs.(a) regs.(b)
      | Sub_ri (a, v) -> regs.(a) <- Word.sub regs.(a) v
      | Mul_rr (a, b) -> regs.(a) <- Word.mul regs.(a) regs.(b)
      | And_rr (a, b) -> regs.(a) <- Word.logand regs.(a) regs.(b)
      | And_ri (a, v) -> regs.(a) <- Word.logand regs.(a) v
      | Or_rr (a, b) -> regs.(a) <- Word.logor regs.(a) regs.(b)
      | Or_ri (a, v) -> regs.(a) <- Word.logor regs.(a) v
      | Xor_rr (a, b) -> regs.(a) <- Word.logxor regs.(a) regs.(b)
      | Xor_ri (a, v) -> regs.(a) <- Word.logxor regs.(a) v
      | Shl_ri (a, v) -> regs.(a) <- Word.shift_left regs.(a) v
      | Shr_ri (a, v) -> regs.(a) <- Word.shift_right regs.(a) v
      | Not_r a -> regs.(a) <- Word.lognot regs.(a)
      | _ -> invalid_arg "reference_eval: not straight-line ALU")
    instrs;
  regs

let arb_gpr = QCheck.Gen.int_range 0 7

let arb_alu_instr : Isa.t QCheck.Gen.t =
  QCheck.Gen.(
    let* a = arb_gpr in
    let* b = arb_gpr in
    let* v = int_range 0 0xFFFFFF in
    let* sh = int_range 0 31 in
    oneofl
      [
        Isa.Mov_ri (a, v);
        Mov_rr (a, b);
        Add_rr (a, b);
        Add_ri (a, v);
        Sub_rr (a, b);
        Sub_ri (a, v);
        Mul_rr (a, b);
        And_rr (a, b);
        And_ri (a, v);
        Or_rr (a, b);
        Or_ri (a, v);
        Xor_rr (a, b);
        Xor_ri (a, v);
        Shl_ri (a, sh);
        Shr_ri (a, sh);
        Not_r a;
      ])

let cpu_vs_reference =
  QCheck.Test.make ~count:200 ~name:"CPU agrees with the reference evaluator"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) arb_alu_instr))
    (fun instrs ->
      let expected = reference_eval instrs in
      let cpu, _, _ = exec (List.map (fun x -> i x) instrs @ [ i Isa.Halt ]) in
      List.for_all (fun r -> expected.(r) = Cpu.get cpu r) [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let assemble_disasm_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"assembled programs disassemble to the same instructions"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) arb_alu_instr))
    (fun instrs ->
      let prog = Asm.assemble ~origin:0 (List.map (fun x -> Asm.I x) instrs) in
      List.map snd (Disasm.buffer prog.code) = instrs)

let more_cpu_tests =
  [
    QCheck_alcotest.to_alcotest cpu_vs_reference;
    QCheck_alcotest.to_alcotest assemble_disasm_roundtrip;
    Alcotest.test_case "push adjusts sp down, pop back up" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_rr (Isa.r5, Isa.sp));
              i (Isa.Mov_ri (Isa.r0, 1));
              i (Isa.Push Isa.r0);
              i (Isa.Push Isa.r0);
              i (Isa.Pop Isa.r1);
              i (Isa.Pop Isa.r1);
              i (Isa.Mov_rr (Isa.r6, Isa.sp));
              i Isa.Halt;
            ]
        in
        check "sp restored" (Cpu.get cpu Isa.r5) (Cpu.get cpu Isa.r6));
    Alcotest.test_case "jg/jle are signed and strict" `Quick (fun () ->
        let run_branch v w =
          let cpu, _, _ =
            exec
              [
                i (Isa.Mov_ri (Isa.r0, v));
                i (Isa.Cmp_ri (Isa.r0, w));
                Asm.Jg_l "greater";
                i (Isa.Mov_ri (Isa.r1, 0));
                i Isa.Halt;
                Asm.Label "greater";
                i (Isa.Mov_ri (Isa.r1, 1));
                i Isa.Halt;
              ]
          in
          Cpu.get cpu Isa.r1
        in
        check "5 > 3" 1 (run_branch 5 3);
        check "3 > 3 is false" 0 (run_branch 3 3);
        check "-1 > 3 is false (signed)" 0 (run_branch 0xFFFFFFFF 3));
    Alcotest.test_case "test_rr sets zf without writing" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r0, 0xF0));
              i (Isa.Mov_ri (Isa.r1, 0x0F));
              i (Isa.Test_rr (Isa.r0, Isa.r1));
              Asm.Jz_l "zero";
              i (Isa.Mov_ri (Isa.r2, 1));
              i Isa.Halt;
              Asm.Label "zero";
              i (Isa.Mov_ri (Isa.r2, 2));
              i Isa.Halt;
            ]
        in
        check "disjoint masks give zf" 2 (Cpu.get cpu Isa.r2);
        check "operand untouched" 0xF0 (Cpu.get cpu Isa.r0));
    Alcotest.test_case "16-bit load reads exactly two bytes" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r0, 0x11223344));
              i (Isa.Store (4, Isa.abs 0x2000, Isa.r0));
              i (Isa.Load (2, Isa.r1, Isa.abs 0x2001));
              i Isa.Halt;
            ]
        in
        check "middle bytes" 0x2233 (Cpu.get cpu Isa.r1));
    Alcotest.test_case "nested calls return correctly" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [
              i (Isa.Mov_ri (Isa.r0, 0));
              Asm.Call_l "outer";
              i Isa.Halt;
              Asm.Label "outer";
              i (Isa.Add_ri (Isa.r0, 1));
              Asm.Call_l "inner";
              i (Isa.Add_ri (Isa.r0, 100));
              i Isa.Ret;
              Asm.Label "inner";
              i (Isa.Add_ri (Isa.r0, 10));
              i Isa.Ret;
            ]
        in
        check "r0" 111 (Cpu.get cpu Isa.r0));
    Alcotest.test_case "conditional effect reports taken flag" `Quick (fun () ->
        let machine = Machine.create () in
        let space = Mmu.create_space machine.mmu ~name:"t" in
        Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:1;
        let prog =
          Asm.assemble ~origin:0x1000
            [ i (Isa.Cmp_ri (Isa.r0, 0)); Asm.Jz_l "t"; Asm.Label "t"; i Isa.Halt ]
        in
        Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
        let cpu = Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:0 in
        (match Machine.step machine cpu with
        | Ok eff -> Alcotest.(check (option bool)) "no branch" None eff.e_taken
        | Error _ -> Alcotest.fail "fault");
        match Machine.step machine cpu with
        | Ok eff -> Alcotest.(check (option bool)) "taken" (Some true) eff.e_taken
        | Error _ -> Alcotest.fail "fault");
    Alcotest.test_case "arithmetic wraps at 32 bits" `Quick (fun () ->
        let cpu, _, _ =
          exec
            [ i (Isa.Mov_ri (Isa.r3, 0xFFFFFFFF)); i (Isa.Add_ri (Isa.r3, 2)); i Isa.Halt ]
        in
        check "wrap" 1 (Cpu.get cpu Isa.r3));
  ]

let () =
  Alcotest.run "faros_vm"
    [
      ("word", word_tests);
      ("encode", encode_tests);
      ("asm", asm_tests);
      ("memory", mem_tests);
      ("cpu", cpu_tests);
      ("cpu-more", more_cpu_tests);
      ("disasm", disasm_tests);
    ]
