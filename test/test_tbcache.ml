(* Tests for the translation-block cache: self-modifying-code
   invalidation, cached-vs-uncached differential equivalence over corpus
   scenarios, and the hit/miss telemetry. *)

open Faros_vm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let i x = Asm.I x

(* Assemble [items] at 0x1000 on a fresh machine and run to halt. *)
let run_program ?(tb = true) ?(max_steps = 10_000) items =
  let machine = Machine.create () in
  Machine.set_tb_enabled machine tb;
  let space = Mmu.create_space machine.mmu ~name:"t" in
  Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:4;
  Mmu.map machine.mmu space ~vaddr:0x7F000 ~pages:4;
  let prog = Asm.assemble ~origin:0x1000 items in
  Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
  let cpu = Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:(0x7F000 + 0x3FF0) in
  let rec go n =
    if n >= max_steps then Alcotest.fail "program did not halt"
    else
      match Machine.step machine cpu with
      | Ok _ when cpu.halted -> ()
      | Ok _ -> go (n + 1)
      | Error f -> Alcotest.failf "fault: %a" Cpu.pp_fault f
  in
  go 0;
  (cpu, machine)

(* A guest that patches its own code and re-executes it: the target
   instruction [Mov_ri r0, 1] sits at 0x1006 (origin 0x1000 + the 6-byte
   Mov_ri before it), so its 4-byte immediate starts at 0x1008.  The first
   pass executes it as written (r0 = 1) and caches the block; the guest
   then stores 42 over the immediate and loops.  Only if the store
   invalidated the cached block does the second pass re-decode and leave
   r0 = 42. *)
let smc_program =
  let target_imm_addr = 0x1000 + 6 + 2 in
  [
    i (Isa.Mov_ri (Isa.r2, 0));  (* pass counter *)
    Asm.Label "loop";
    i (Isa.Mov_ri (Isa.r0, 1));  (* the patched instruction *)
    i (Isa.Cmp_ri (Isa.r2, 1));
    Asm.Jz_l "done";
    i (Isa.Mov_ri (Isa.r2, 1));
    i (Isa.Mov_ri (Isa.r3, 42));
    i (Isa.Store (1, Isa.abs target_imm_addr, Isa.r3));
    Asm.Jmp_l "loop";
    Asm.Label "done";
    i Isa.Halt;
  ]

let smc_tests =
  [
    Alcotest.test_case "store into a cached block forces re-decode" `Quick
      (fun () ->
        let cpu, machine = run_program smc_program in
        check "patched instruction re-executed" 42 (Cpu.get cpu Isa.r0);
        let st = Machine.tb_stats machine in
        check_bool "invalidation counted" true (st.Tb_cache.st_invalidations >= 1));
    Alcotest.test_case "uncached interpreter agrees on the SMC program" `Quick
      (fun () ->
        let cached, _ = run_program ~tb:true smc_program in
        let uncached, _ = run_program ~tb:false smc_program in
        check "same r0" (Cpu.get uncached Isa.r0) (Cpu.get cached Isa.r0);
        check "same instr count" uncached.instr_count cached.instr_count;
        check "same pc" uncached.pc cached.pc);
    Alcotest.test_case "unmap invalidates the space's blocks" `Quick (fun () ->
        let machine = Machine.create () in
        let space = Mmu.create_space machine.mmu ~name:"t" in
        Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:1;
        let prog = Asm.assemble ~origin:0x1000 [ i Isa.Nop; i Isa.Halt ] in
        Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
        let cpu = Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:0 in
        (match Machine.step machine cpu with
        | Ok _ -> ()
        | Error f -> Alcotest.failf "fault: %a" Cpu.pp_fault f);
        let before = (Machine.tb_stats machine).Tb_cache.st_blocks in
        check_bool "block cached" true (before >= 1);
        Mmu.unmap machine.mmu space ~vaddr:0x1000 ~pages:1;
        check "blocks dropped" 0 (Machine.tb_stats machine).Tb_cache.st_blocks);
  ]

(* -- four-way differential over corpus scenarios -------------------------- *)

let differential_ids =
  [ "reflective_dll_inject"; "process_hollowing"; "snipping_tool_s0"; "applet_ncradle" ]

(* One full analysis with the TB cache and the DIFT fast path each forced
   on or off; a fresh interner per run so rendered provenance is
   independent of run order. *)
let analyze_with ~tb ~fast id =
  let sample =
    match Faros_corpus.Registry.find id with
    | Some s -> s
    | None -> Alcotest.failf "unknown sample %s" id
  in
  let saved_tb = !Machine.tb_default_enabled in
  let saved_fast = !Machine.dift_fast_default_enabled in
  Machine.tb_default_enabled := tb;
  Machine.dift_fast_default_enabled := fast;
  Fun.protect
    ~finally:(fun () ->
      Machine.tb_default_enabled := saved_tb;
      Machine.dift_fast_default_enabled := saved_fast)
    (fun () ->
      let store = Faros_dift.Prov_intern.create_store () in
      Faros_dift.Prov_intern.set_store store;
      let outcome = Faros_corpus.Scenario.analyze sample.scenario in
      let flags = Core.Report.flagged_sites outcome.report in
      let rendered = Fmt.str "%a" Core.Faros_plugin.pp_report outcome.faros in
      ( outcome.record_ticks,
        outcome.replay.replay_ticks,
        outcome.replay.diverged,
        List.length flags,
        rendered ))

let differential_tests =
  [
    Alcotest.test_case "off vs on: identical verdicts, ticks and reports"
      `Slow
      (fun () ->
        (* The full matrix: TB cache x DIFT fast path.  Every configuration
           must produce byte-identical analysis results; (tb:false,
           fast:true) additionally pins that the fast-path knob is inert
           without the cache (no summaries to consult). *)
        List.iter
          (fun id ->
            let rt, pt, div, nflags, rep = analyze_with ~tb:false ~fast:false id in
            List.iter
              (fun (tb, fast) ->
                let label =
                  Printf.sprintf "%s (tb:%b fast:%b)" id tb fast
                in
                let rt', pt', div', nflags', rep' = analyze_with ~tb ~fast id in
                check (label ^ ": record ticks") rt rt';
                check (label ^ ": replay ticks") pt pt';
                check_bool (label ^ ": diverged") div div';
                check (label ^ ": flag count") nflags nflags';
                Alcotest.(check string) (label ^ ": report") rep rep')
              [ (true, false); (false, true); (true, true) ])
          differential_ids);
    Alcotest.test_case "fetch-tainted code still flags with the fast path on"
      `Quick
      (fun () ->
        (* Injected code executes from netflow-tainted pages; the fast path
           must never swallow that signal (its first execution is
           unconverged, so the fetch touch and the detector both run). *)
        let _, _, _, nflags, _ =
          analyze_with ~tb:true ~fast:true "reflective_dll_inject"
        in
        check_bool "flagged" true (nflags >= 1));
  ]

(* -- decode-time taint summaries ------------------------------------------ *)

(* Translate one block and return its summary. *)
let summary_of items =
  let machine = Machine.create () in
  let space = Mmu.create_space machine.mmu ~name:"t" in
  Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:4;
  let prog = Asm.assemble ~origin:0x1000 items in
  Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
  match Tb_cache.translate machine.tb ~asid:space.asid ~pc:0x1000 with
  | Some b -> (b.Tb_cache.b_summary, Machine.tb_stats machine)
  | None -> Alcotest.fail "translation failed"

let reg_bit r = 1 lsl r

let summary_tests =
  [
    Alcotest.test_case "inert block: no registers, memory or flags" `Quick
      (fun () ->
        let su, st = summary_of [ i Isa.Nop; i Isa.Halt ] in
        check "regs" 0 su.Tb_cache.su_regs;
        check_bool "mem" false su.su_mem;
        check_bool "flags" false su.su_flags;
        check_bool "summary counted" true (st.Tb_cache.st_summarized >= 1));
    Alcotest.test_case "load names value and address registers, and memory"
      `Quick
      (fun () ->
        let su, _ =
          summary_of [ i (Isa.Load (4, Isa.r0, Isa.based Isa.r2)); i Isa.Halt ]
        in
        check "regs" (reg_bit Isa.r0 lor reg_bit Isa.r2) su.Tb_cache.su_regs;
        check_bool "mem" true su.su_mem;
        check_bool "flags" false su.su_flags);
    Alcotest.test_case "compare and branch touch flags, not memory" `Quick
      (fun () ->
        let su, _ =
          summary_of
            [ i (Isa.Cmp_ri (Isa.r1, 7)); Asm.Jz_l "out"; Asm.Label "out"; i Isa.Halt ]
        in
        check "regs" (reg_bit Isa.r1) su.Tb_cache.su_regs;
        check_bool "mem" false su.su_mem;
        check_bool "flags" true su.su_flags);
  ]

(* -- DIFT fast path over a Table-V workload ------------------------------- *)

let fastpath_tests =
  [
    Alcotest.test_case "steady-state workload mostly skips propagation" `Slow
      (fun () ->
        (* A long-running benign workload converges: images are wholesale
           file-tainted at load, so after each block's first execution the
           fetch touch is a no-op and the fast path takes over.  Also pins
           the accounting invariant hits + misses = engine.instrs. *)
        let store = Faros_dift.Prov_intern.create_store () in
        Faros_dift.Prov_intern.set_store store;
        let _, scn = List.hd (Faros_corpus.Perf.workloads ()) in
        let _k, trace = Faros_corpus.Scenario.record scn in
        let metrics = Faros_obs.Metrics.create () in
        let faros = ref None in
        ignore
          (Faros_corpus.Scenario.replay_with scn ~tb_cache:true ~dift_fast:true
             ~plugins:(fun kernel ->
               let f = Core.Faros_plugin.create ~metrics kernel in
               faros := Some f;
               [ Core.Faros_plugin.plugin f ])
             trace);
        (match !faros with Some f -> Core.Faros_plugin.finalize f | None -> ());
        let g name =
          Faros_obs.Metrics.gauge_value (Faros_obs.Metrics.gauge metrics name)
        in
        let hits = g "dift.fastpath.hits" and misses = g "dift.fastpath.misses" in
        let instrs =
          Faros_obs.Metrics.counter_value
            (Faros_obs.Metrics.counter metrics "engine.instrs")
        in
        check "every instruction accounted" instrs (hits + misses);
        check_bool "summaries compiled" true (g "dift.fastpath.blocks_summarized" >= 1);
        check_bool "skip rate >= 70%" true
          (float_of_int hits /. float_of_int (max 1 (hits + misses)) >= 0.7));
  ]

(* -- telemetry ------------------------------------------------------------ *)

let stats_tests =
  [
    Alcotest.test_case "steady-state loop hits the cache" `Quick (fun () ->
        (* 100 iterations of a 3-instruction loop: after the first pass
           every instruction is a cache hit. *)
        let cpu, machine =
          run_program
            [
              i (Isa.Mov_ri (Isa.r0, 100));
              Asm.Label "loop";
              i (Isa.Sub_ri (Isa.r0, 1));
              i (Isa.Cmp_ri (Isa.r0, 0));
              Asm.Jnz_l "loop";
              i Isa.Halt;
            ]
        in
        check "loop ran" 0 (Cpu.get cpu Isa.r0);
        let st = Machine.tb_stats machine in
        let total = st.Tb_cache.st_hits + st.Tb_cache.st_misses in
        check "accounted every instruction" cpu.instr_count total;
        check_bool "hit rate >= 90%" true
          (float_of_int st.Tb_cache.st_hits /. float_of_int total >= 0.9));
    Alcotest.test_case "tlb serves repeated translations" `Quick (fun () ->
        let machine = Machine.create () in
        let space = Mmu.create_space machine.mmu ~name:"t" in
        Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:1;
        for _ = 1 to 10 do
          ignore (Mmu.translate machine.mmu ~asid:space.asid 0x1234)
        done;
        let hits, misses = Machine.tlb_stats machine in
        check "one miss fills the slot" 1 misses;
        check "the rest hit" 9 hits);
    Alcotest.test_case "disabling the cache flushes it" `Quick (fun () ->
        let _, machine =
          run_program [ i (Isa.Mov_ri (Isa.r0, 7)); i Isa.Halt ]
        in
        check_bool "blocks cached" true
          ((Machine.tb_stats machine).Tb_cache.st_blocks >= 1);
        Machine.set_tb_enabled machine false;
        check "flushed" 0 (Machine.tb_stats machine).Tb_cache.st_blocks);
  ]

let () =
  Alcotest.run "tbcache"
    [
      ("smc", smc_tests);
      ("summary", summary_tests);
      ("differential", differential_tests);
      ("fastpath", fastpath_tests);
      ("stats", stats_tests);
    ]
