(* Tests for the translation-block cache: self-modifying-code
   invalidation, cached-vs-uncached differential equivalence over corpus
   scenarios, and the hit/miss telemetry. *)

open Faros_vm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let i x = Asm.I x

(* Assemble [items] at 0x1000 on a fresh machine and run to halt. *)
let run_program ?(tb = true) ?(max_steps = 10_000) items =
  let machine = Machine.create () in
  Machine.set_tb_enabled machine tb;
  let space = Mmu.create_space machine.mmu ~name:"t" in
  Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:4;
  Mmu.map machine.mmu space ~vaddr:0x7F000 ~pages:4;
  let prog = Asm.assemble ~origin:0x1000 items in
  Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
  let cpu = Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:(0x7F000 + 0x3FF0) in
  let rec go n =
    if n >= max_steps then Alcotest.fail "program did not halt"
    else
      match Machine.step machine cpu with
      | Ok _ when cpu.halted -> ()
      | Ok _ -> go (n + 1)
      | Error f -> Alcotest.failf "fault: %a" Cpu.pp_fault f
  in
  go 0;
  (cpu, machine)

(* A guest that patches its own code and re-executes it: the target
   instruction [Mov_ri r0, 1] sits at 0x1006 (origin 0x1000 + the 6-byte
   Mov_ri before it), so its 4-byte immediate starts at 0x1008.  The first
   pass executes it as written (r0 = 1) and caches the block; the guest
   then stores 42 over the immediate and loops.  Only if the store
   invalidated the cached block does the second pass re-decode and leave
   r0 = 42. *)
let smc_program =
  let target_imm_addr = 0x1000 + 6 + 2 in
  [
    i (Isa.Mov_ri (Isa.r2, 0));  (* pass counter *)
    Asm.Label "loop";
    i (Isa.Mov_ri (Isa.r0, 1));  (* the patched instruction *)
    i (Isa.Cmp_ri (Isa.r2, 1));
    Asm.Jz_l "done";
    i (Isa.Mov_ri (Isa.r2, 1));
    i (Isa.Mov_ri (Isa.r3, 42));
    i (Isa.Store (1, Isa.abs target_imm_addr, Isa.r3));
    Asm.Jmp_l "loop";
    Asm.Label "done";
    i Isa.Halt;
  ]

let smc_tests =
  [
    Alcotest.test_case "store into a cached block forces re-decode" `Quick
      (fun () ->
        let cpu, machine = run_program smc_program in
        check "patched instruction re-executed" 42 (Cpu.get cpu Isa.r0);
        let st = Machine.tb_stats machine in
        check_bool "invalidation counted" true (st.Tb_cache.st_invalidations >= 1));
    Alcotest.test_case "uncached interpreter agrees on the SMC program" `Quick
      (fun () ->
        let cached, _ = run_program ~tb:true smc_program in
        let uncached, _ = run_program ~tb:false smc_program in
        check "same r0" (Cpu.get uncached Isa.r0) (Cpu.get cached Isa.r0);
        check "same instr count" uncached.instr_count cached.instr_count;
        check "same pc" uncached.pc cached.pc);
    Alcotest.test_case "unmap invalidates the space's blocks" `Quick (fun () ->
        let machine = Machine.create () in
        let space = Mmu.create_space machine.mmu ~name:"t" in
        Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:1;
        let prog = Asm.assemble ~origin:0x1000 [ i Isa.Nop; i Isa.Halt ] in
        Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
        let cpu = Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:0 in
        (match Machine.step machine cpu with
        | Ok _ -> ()
        | Error f -> Alcotest.failf "fault: %a" Cpu.pp_fault f);
        let before = (Machine.tb_stats machine).Tb_cache.st_blocks in
        check_bool "block cached" true (before >= 1);
        Mmu.unmap machine.mmu space ~vaddr:0x1000 ~pages:1;
        check "blocks dropped" 0 (Machine.tb_stats machine).Tb_cache.st_blocks);
  ]

(* -- cached vs uncached differential over corpus scenarios ---------------- *)

let differential_ids =
  [ "reflective_dll_inject"; "process_hollowing"; "snipping_tool_s0"; "applet_ncradle" ]

(* One full analysis with the cache forced [on] or off; a fresh interner
   per run so rendered provenance is independent of run order. *)
let analyze_with ~tb id =
  let sample =
    match Faros_corpus.Registry.find id with
    | Some s -> s
    | None -> Alcotest.failf "unknown sample %s" id
  in
  let saved = !Machine.tb_default_enabled in
  Machine.tb_default_enabled := tb;
  Fun.protect
    ~finally:(fun () -> Machine.tb_default_enabled := saved)
    (fun () ->
      let store = Faros_dift.Prov_intern.create_store () in
      Faros_dift.Prov_intern.set_store store;
      let outcome = Faros_corpus.Scenario.analyze sample.scenario in
      let flags = Core.Report.flagged_sites outcome.report in
      let rendered = Fmt.str "%a" Core.Faros_plugin.pp_report outcome.faros in
      ( outcome.record_ticks,
        outcome.replay.replay_ticks,
        outcome.replay.diverged,
        List.length flags,
        rendered ))

let differential_tests =
  [
    Alcotest.test_case "off vs on: identical verdicts, ticks and reports"
      `Slow
      (fun () ->
        List.iter
          (fun id ->
            let rt_on, pt_on, div_on, nflags_on, rep_on = analyze_with ~tb:true id in
            let rt_off, pt_off, div_off, nflags_off, rep_off =
              analyze_with ~tb:false id
            in
            check (id ^ ": record ticks") rt_off rt_on;
            check (id ^ ": replay ticks") pt_off pt_on;
            check_bool (id ^ ": diverged") div_off div_on;
            check (id ^ ": flag count") nflags_off nflags_on;
            Alcotest.(check string) (id ^ ": report") rep_off rep_on)
          differential_ids);
  ]

(* -- telemetry ------------------------------------------------------------ *)

let stats_tests =
  [
    Alcotest.test_case "steady-state loop hits the cache" `Quick (fun () ->
        (* 100 iterations of a 3-instruction loop: after the first pass
           every instruction is a cache hit. *)
        let cpu, machine =
          run_program
            [
              i (Isa.Mov_ri (Isa.r0, 100));
              Asm.Label "loop";
              i (Isa.Sub_ri (Isa.r0, 1));
              i (Isa.Cmp_ri (Isa.r0, 0));
              Asm.Jnz_l "loop";
              i Isa.Halt;
            ]
        in
        check "loop ran" 0 (Cpu.get cpu Isa.r0);
        let st = Machine.tb_stats machine in
        let total = st.Tb_cache.st_hits + st.Tb_cache.st_misses in
        check "accounted every instruction" cpu.instr_count total;
        check_bool "hit rate >= 90%" true
          (float_of_int st.Tb_cache.st_hits /. float_of_int total >= 0.9));
    Alcotest.test_case "tlb serves repeated translations" `Quick (fun () ->
        let machine = Machine.create () in
        let space = Mmu.create_space machine.mmu ~name:"t" in
        Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:1;
        for _ = 1 to 10 do
          ignore (Mmu.translate machine.mmu ~asid:space.asid 0x1234)
        done;
        let hits, misses = Machine.tlb_stats machine in
        check "one miss fills the slot" 1 misses;
        check "the rest hit" 9 hits);
    Alcotest.test_case "disabling the cache flushes it" `Quick (fun () ->
        let _, machine =
          run_program [ i (Isa.Mov_ri (Isa.r0, 7)); i Isa.Halt ]
        in
        check_bool "blocks cached" true
          ((Machine.tb_stats machine).Tb_cache.st_blocks >= 1);
        Machine.set_tb_enabled machine false;
        check "flushed" 0 (Machine.tb_stats machine).Tb_cache.st_blocks);
  ]

let () =
  Alcotest.run "tbcache"
    [
      ("smc", smc_tests);
      ("differential", differential_tests);
      ("stats", stats_tests);
    ]
