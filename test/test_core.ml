(* Tests for the FAROS core: detector policy, report rendering, whitelist,
   and full end-to-end analyses of the paper's attack samples. *)

open Faros_dift

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* -- detector (pure policy) --------------------------------------------------- *)

let info ?(instr_prov = []) ?(read_prov = []) () : Engine.load_info =
  {
    li_asid = 1;
    li_pc = 0x1000;
    li_instr = Faros_vm.Isa.Load (4, 0, Faros_vm.Isa.abs 0);
    li_instr_prov = Provenance.of_list instr_prov;
    li_read_vaddr = 0x80100008;
    li_read_paddr = 0;
    li_read_prov = Provenance.of_list read_prov;
  }

let detector ?(config = Core.Config.default) () =
  Core.Detector.create ~config
    ~name_of_asid:(fun asid -> Printf.sprintf "proc%d.exe" asid)
    ()

let detect ?config ~instr_prov ~read_prov () =
  let d = detector ?config () in
  Core.Detector.on_load d ~tick:0 (info ~instr_prov ~read_prov ());
  Core.Report.flagged d.report

let detector_tests =
  [
    Alcotest.test_case "netflow + process over export flags" `Quick (fun () ->
        check_b "flag" true
          (detect
             ~instr_prov:[ Tag.Process 0; Tag.Netflow 0 ]
             ~read_prov:[ Tag.Export_table 0 ] ()));
    Alcotest.test_case "file + process over export flags (hollowing)" `Quick
      (fun () ->
        check_b "flag" true
          (detect
             ~instr_prov:[ Tag.Process 1; Tag.Process 0; Tag.File 0 ]
             ~read_prov:[ Tag.Export_table 0 ] ()));
    Alcotest.test_case "no export tag, no flag" `Quick (fun () ->
        check_b "clean" false
          (detect
             ~instr_prov:[ Tag.Process 0; Tag.Netflow 0 ]
             ~read_prov:[ Tag.File 0 ] ()));
    Alcotest.test_case "no source tag, no flag" `Quick (fun () ->
        check_b "clean" false
          (detect ~instr_prov:[ Tag.Process 0 ] ~read_prov:[ Tag.Export_table 0 ] ()));
    Alcotest.test_case "no process tag, no flag" `Quick (fun () ->
        check_b "clean" false
          (detect ~instr_prov:[ Tag.Netflow 0 ] ~read_prov:[ Tag.Export_table 0 ] ()));
    Alcotest.test_case "strict netflow config ignores file-borne" `Quick
      (fun () ->
        check_b "clean" false
          (detect ~config:Core.Config.strict_netflow
             ~instr_prov:[ Tag.Process 1; Tag.Process 0; Tag.File 0 ]
             ~read_prov:[ Tag.Export_table 0 ] ()));
    Alcotest.test_case "min_process_tags=2 misses self-injection" `Quick
      (fun () ->
        let config = { Core.Config.default with min_process_tags = 2 } in
        check_b "missed" false
          (detect ~config
             ~instr_prov:[ Tag.Process 0; Tag.Netflow 0 ]
             ~read_prov:[ Tag.Export_table 0 ] ());
        check_b "cross-process still caught" true
          (detect ~config
             ~instr_prov:[ Tag.Process 1; Tag.Process 0; Tag.Netflow 0 ]
             ~read_prov:[ Tag.Export_table 0 ] ()));
    Alcotest.test_case "single-bit policy flags any tainted code" `Quick
      (fun () ->
        let config =
          Core.Config.with_policy Policy.bit_taint Core.Config.default
        in
        check_b "flag" true
          (detect ~config ~instr_prov:[ Tag.Netflow 0 ]
             ~read_prov:[ Tag.Export_table 0 ] ());
        check_b "clean code clean" false
          (detect ~config ~instr_prov:[] ~read_prov:[ Tag.Export_table 0 ] ()));
    Alcotest.test_case "whitelisted process suppressed but recorded" `Quick
      (fun () ->
        let config =
          Core.Config.with_whitelist [ "proc1.exe" ] Core.Config.default
        in
        let d = detector ~config () in
        Core.Detector.on_load d ~tick:0
          (info
             ~instr_prov:[ Tag.Process 0; Tag.Netflow 0 ]
             ~read_prov:[ Tag.Export_table 0 ] ());
        check_b "not flagged" false (Core.Report.flagged d.report);
        check "suppressed count" 1 d.report.suppressed);
  ]

(* -- report -------------------------------------------------------------------- *)

let mk_flag ?(pc = 0x1000) ?(process = "a.exe") () : Core.Report.flag =
  {
    f_tick = 0;
    f_pc = pc;
    f_asid = 0;
    f_process = process;
    f_instr = Faros_vm.Isa.Nop;
    f_instr_prov = Provenance.of_list [ Tag.Process 0; Tag.Netflow 0 ];
    f_read_vaddr = 0;
    f_read_prov = Provenance.of_list [ Tag.Export_table 0 ];
    f_whitelisted = false;
  }

let report_tests =
  [
    Alcotest.test_case "flagged_sites dedupes by (process, pc)" `Quick (fun () ->
        let r = Core.Report.create () in
        Core.Report.add r (mk_flag ());
        Core.Report.add r (mk_flag ());
        Core.Report.add r (mk_flag ~pc:0x2000 ());
        Core.Report.add r (mk_flag ~process:"b.exe" ());
        check "flags" 4 (List.length (Core.Report.flags r));
        check "sites" 3 (List.length (Core.Report.flagged_sites r)));
    Alcotest.test_case "whitelisted flags not effective" `Quick (fun () ->
        let r = Core.Report.create () in
        Core.Report.add r { (mk_flag ()) with f_whitelisted = true };
        check_b "not flagged" false (Core.Report.flagged r);
        check "suppressed" 1 r.suppressed);
    Alcotest.test_case "provenance renders oldest-first like Table II" `Quick
      (fun () ->
        let store = Tag_store.create () in
        let nf =
          Tag_store.netflow store
            {
              src_ip = Faros_os.Types.Ip.of_string "169.254.26.161";
              src_port = 4444;
              dst_ip = Faros_os.Types.Ip.of_string "169.254.57.168";
              dst_port = 49162;
            }
        in
        let p1 = Tag_store.process store 7 in
        (* newest first in the list: process touched it after the netflow *)
        let prov = Provenance.of_list [ p1; nf ] in
        let rendered =
          Core.Report.render_provenance ~store
            ~name_of_asid:(fun _ -> "inject_client.exe")
            prov
        in
        check_s "rendered"
          "NetFlow: {src ip,port: 169.254.26.161:4444, dest ip.port: 169.254.57.168:49162} -> Process: inject_client.exe"
          rendered);
    Alcotest.test_case "file and export tags render" `Quick (fun () ->
        let store = Tag_store.create () in
        let f = Tag_store.file store ~name:"x.exe" ~version:2 in
        let rendered =
          Core.Report.render_provenance ~store
            ~name_of_asid:(fun _ -> "?")
            (Provenance.of_list [ Tag.Export_table 0; f ])
        in
        check_s "rendered" "File: x.exe (v2) -> Export-table" rendered);
    Alcotest.test_case "export tag renders its function name" `Quick (fun () ->
        let store = Tag_store.create () in
        let e = Tag_store.export store ~name:"GetProcAddress" in
        check_s "rendered" "Export-table: GetProcAddress"
          (Core.Report.render_provenance ~store
             ~name_of_asid:(fun _ -> "?")
             (Provenance.singleton e)));
  ]

(* -- end-to-end analyses -------------------------------------------------------- *)

let analyze id =
  match Faros_corpus.Registry.find id with
  | Some s -> Faros_corpus.Scenario.analyze s.scenario
  | None -> Alcotest.failf "unknown sample %s" id

let prov_processes (outcome : Core.Analysis.outcome) prov =
  List.filter_map
    (Tag_store.cr3_of outcome.faros.engine.store)
    (Provenance.process_indices prov)
  |> List.map (Core.Faros_plugin.name_of_asid outcome.faros.kernel)

let first_flag (outcome : Core.Analysis.outcome) =
  match Core.Report.flagged_sites outcome.report with
  | f :: _ -> f
  | [] -> Alcotest.fail "expected a flag"

let e2e_tests =
  [
    Alcotest.test_case "fig7: full provenance chain" `Slow (fun () ->
        let outcome = analyze "reflective_dll_inject" in
        let f = first_flag outcome in
        check_s "victim" "notepad.exe" f.f_process;
        check_b "netflow" true (Provenance.has_netflow f.f_instr_prov);
        Alcotest.(check (list string))
          "process chain (newest first)"
          [ "notepad.exe"; "inject_client.exe" ]
          (prov_processes outcome f.f_instr_prov);
        check_b "export read" true (Provenance.has_export f.f_read_prov));
    Alcotest.test_case "fig8: self-injection single process tag" `Slow (fun () ->
        let outcome = analyze "reverse_tcp_dns" in
        let f = first_flag outcome in
        Alcotest.(check (list string))
          "chain" [ "inject_client.exe" ]
          (prov_processes outcome f.f_instr_prov));
    Alcotest.test_case "fig10: hollowing is file-borne" `Slow (fun () ->
        let outcome = analyze "process_hollowing" in
        let f = first_flag outcome in
        check_s "victim" "svchost.exe" f.f_process;
        check_b "no netflow" false (Provenance.has_netflow f.f_instr_prov);
        check_b "file source" true (Provenance.has_file f.f_instr_prov);
        Alcotest.(check (list string))
          "chain"
          [ "svchost.exe"; "process_hollowing.exe" ]
          (prov_processes outcome f.f_instr_prov));
    Alcotest.test_case "hollowing payload actually keylogs" `Slow (fun () ->
        let outcome = analyze "process_hollowing" in
        let kernel = outcome.faros.kernel in
        check_b "log file written" true
          (Faros_os.Fs.exists kernel.fs "practicalmalware.log");
        check_s "captured the scripted keystrokes" "hunter2!password"
          (Faros_os.Fs.read_all kernel.fs "practicalmalware.log"));
    Alcotest.test_case "injected popup proves execution in the victim" `Slow
      (fun () ->
        (* record phase: check the popup event comes from the victim pid *)
        let scn = Faros_corpus.Attack_reflective.reflective_dll_inject () in
        let popups = ref [] in
        let kernel, _trace =
          Faros_replay.Recorder.record ~max_ticks:scn.max_ticks
            ~plugins:(fun kernel ->
              [
                Faros_replay.Plugin.make "popup-watch" ~on_os_event:(fun ev ->
                    match ev with
                    | Faros_os.Os_event.Popup { pid; text } ->
                      popups :=
                        (Faros_os.Kstate.proc_name kernel pid, text) :: !popups
                    | _ -> ());
              ])
            ~setup:(Faros_corpus.Scenario.setup_record scn)
            ~boot:(Faros_corpus.Scenario.boot scn)
            ()
        in
        ignore kernel;
        Alcotest.(check (list (pair string string)))
          "popup from notepad"
          [ ("notepad.exe", "injected!") ]
          !popups);
    Alcotest.test_case "all six attacks flag" `Slow (fun () ->
        List.iter
          (fun (s : Faros_corpus.Registry.sample) ->
            let outcome = Faros_corpus.Scenario.analyze s.scenario in
            check_b s.id true (Core.Report.flagged outcome.report))
          (Faros_corpus.Registry.attacks ()));
    Alcotest.test_case "replay under FAROS does not diverge" `Slow (fun () ->
        List.iter
          (fun (s : Faros_corpus.Registry.sample) ->
            let outcome = Faros_corpus.Scenario.analyze s.scenario in
            check_b (s.id ^ " no divergence") false outcome.replay.diverged)
          (Faros_corpus.Registry.attacks ()));
    Alcotest.test_case "benign and RAT samples stay clean (spot checks)" `Slow
      (fun () ->
        List.iter
          (fun id ->
            let outcome = analyze id in
            check_b id false (Core.Report.flagged outcome.report))
          [
            "pandora_v2.2_s0";
            "njrat_v0.7_s0";
            "quasar_v1.0_s0";
            "skype_s0";
            "teamviewer_s0";
            "remote_utility_s0";
            "snipping_tool_s0";
          ]);
    Alcotest.test_case "jit: native applet flags, bytecode applet clean" `Slow
      (fun () ->
        check_b "native" true
          (Core.Report.flagged (analyze "applet_ncradle").report);
        check_b "bytecode" false
          (Core.Report.flagged (analyze "applet_acceleration").report);
        check_b "ajax" false (Core.Report.flagged (analyze "ajax_gmail.com").report));
    Alcotest.test_case "whitelisting the JVM kills the applet FP" `Slow
      (fun () ->
        match Faros_corpus.Registry.find "applet_ncradle" with
        | None -> Alcotest.fail "missing sample"
        | Some s ->
          let config =
            Core.Config.with_whitelist Core.Whitelist.jit_default
              Core.Config.default
          in
          let outcome = Faros_corpus.Scenario.analyze ~config s.scenario in
          check_b "suppressed" false (Core.Report.flagged outcome.report);
          check_b "still visible to the analyst" true
            (outcome.report.suppressed > 0));
    Alcotest.test_case "laundering evasion: default misses, control-deps catch"
      `Slow (fun () ->
        match Faros_corpus.Registry.find "evasive_laundering_injection" with
        | None -> Alcotest.fail "missing sample"
        | Some s ->
          let default = Faros_corpus.Scenario.analyze s.scenario in
          check_b "default policy evaded" false (Core.Report.flagged default.report);
          let config =
            Core.Config.with_policy Policy.with_control_deps Core.Config.default
          in
          let hardened = Faros_corpus.Scenario.analyze ~config s.scenario in
          check_b "control-dep policy catches it" true
            (Core.Report.flagged hardened.report);
          (* the payload still ran in both cases *)
          check_b "attack executed" true
            (List.exists
               (fun (p : Faros_os.Process.t) ->
                 p.proc_name = "notepad.exe" && p.state = Faros_os.Process.Terminated)
               (Faros_os.Kstate.processes default.faros.kernel)));
    Alcotest.test_case "reflective DLL: flag fires inside the mapped image"
      `Slow (fun () ->
        (* the wire blob lands at heap_base; the bootstrap maps the DLL at
           rdll_image_base with its own memcpy.  Taint must survive that
           guest-level copy: the flag's pc lies in the *mapped* image. *)
        let outcome = analyze "reflective_rdll" in
        let f = first_flag outcome in
        check_s "victim" "notepad.exe" f.f_process;
        check_b "pc inside the mapped image" true
          (f.f_pc >= Faros_corpus.Payloads.rdll_image_base
          && f.f_pc
             < Faros_corpus.Payloads.rdll_image_base + Faros_vm.Phys_mem.page_size);
        check_b "netflow survived the in-guest memcpy" true
          (Provenance.has_netflow f.f_instr_prov));
    Alcotest.test_case "multi-target injection: both victims reported" `Slow
      (fun () ->
        let outcome = Faros_corpus.Scenario.analyze (Faros_corpus.Extras.multi_target ()) in
        let victims =
          Core.Report.flagged_sites outcome.report
          |> List.map (fun (f : Core.Report.flag) -> f.f_process)
          |> List.sort_uniq compare
        in
        check_b "notepad flagged" true (List.mem "notepad.exe" victims);
        check_b "firefox flagged" true (List.mem "firefox.exe" victims));
    Alcotest.test_case
      "file-borne rule tradeoff: benign export walker flags by default, not under strict netflow"
      `Slow (fun () ->
        let scn = Faros_corpus.Extras.export_walker () in
        let default = Faros_corpus.Scenario.analyze scn in
        check_b "default flags it (cost of catching hollowing)" true
          (Core.Report.flagged default.report);
        let strict =
          Faros_corpus.Scenario.analyze ~config:Core.Config.strict_netflow scn
        in
        check_b "strict netflow stays quiet" false
          (Core.Report.flagged strict.report));
    Alcotest.test_case "flag carries the export-table read address" `Slow
      (fun () ->
        let outcome = analyze "reflective_dll_inject" in
        let f = first_flag outcome in
        check_b "in export dir" true
          (f.f_read_vaddr >= Faros_os.Export_table.export_dir_vaddr
          && f.f_read_vaddr
             < Faros_os.Export_table.export_dir_vaddr
               + (Faros_os.Export_table.export_dir_pages
                 * Faros_vm.Phys_mem.page_size)));
  ]


(* -- configuration behaviour end to end ----------------------------------------- *)

let config_tests =
  [
    Alcotest.test_case "strict netflow config misses file-borne hollowing" `Slow
      (fun () ->
        match Faros_corpus.Registry.find "process_hollowing" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let outcome =
            Faros_corpus.Scenario.analyze ~config:Core.Config.strict_netflow
              s.scenario
          in
          check_b "missed under strict netflow" false
            (Core.Report.flagged outcome.report));
    Alcotest.test_case "bit-taint policy still catches network-borne attacks"
      `Slow (fun () ->
        match Faros_corpus.Registry.find "reflective_dll_inject" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let config =
            Core.Config.with_policy Policy.bit_taint Core.Config.default
          in
          let outcome = Faros_corpus.Scenario.analyze ~config s.scenario in
          check_b "flagged" true (Core.Report.flagged outcome.report));
    Alcotest.test_case "bit-taint policy misses file-borne hollowing" `Slow
      (fun () ->
        match Faros_corpus.Registry.find "process_hollowing" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let config =
            Core.Config.with_policy Policy.bit_taint Core.Config.default
          in
          let outcome = Faros_corpus.Scenario.analyze ~config s.scenario in
          check_b "missed" false (Core.Report.flagged outcome.report));
    Alcotest.test_case "block-processing mode gives identical verdicts" `Slow
      (fun () ->
        List.iter
          (fun id ->
            let direct = analyze id in
            match Faros_corpus.Registry.find id with
            | None -> Alcotest.fail "missing"
            | Some s ->
              let block =
                Faros_corpus.Scenario.analyze
                  ~config:(Core.Config.with_block_processing Core.Config.default)
                  s.scenario
              in
              check_b (id ^ " same verdict") true
                (Core.Report.flagged direct.report
                = Core.Report.flagged block.report);
              check_b (id ^ " batcher present") true (block.faros.batcher <> None);
              check (id ^ " same flag count")
                (List.length (Core.Report.flags direct.report))
                (List.length (Core.Report.flags block.report)))
          [ "reflective_dll_inject"; "process_hollowing"; "pandora_v2.2_s0" ]);
    Alcotest.test_case "Analysis.flagged mirrors the report" `Slow (fun () ->
        let outcome = analyze "reflective_dll_inject" in
        check_b "true" true (Core.Analysis.flagged outcome);
        let clean = analyze "snipping_tool_s0" in
        check_b "false" false (Core.Analysis.flagged clean));
    Alcotest.test_case "detector counts every load it checks" `Slow (fun () ->
        let outcome = analyze "reverse_tcp_dns" in
        check_b "loads checked" true (Core.Detector.loads_checked outcome.faros.detector > 0));
    Alcotest.test_case "report table output has the Table II header" `Slow
      (fun () ->
        let outcome = analyze "reflective_dll_inject" in
        let text = Fmt.str "%a" (fun ppf () -> Core.Faros_plugin.pp_report ppf outcome.faros) () in
        check_b "header" true
          (String.length text > 0
          && String.sub text 0 14 = "Memory Address"));
    Alcotest.test_case "unknown tag indices render with a fallback" `Quick
      (fun () ->
        let store = Tag_store.create () in
        check_s "netflow fallback" "NetFlow: #9"
          (Core.Report.describe_tag ~store ~name_of_asid:(fun _ -> "?")
             (Tag.Netflow 9));
        check_s "export fallback" "Export-table"
          (Core.Report.describe_tag ~store ~name_of_asid:(fun _ -> "?")
             (Tag.Export_table 9)));
    Alcotest.test_case "export tag in a flag names the resolved function" `Slow
      (fun () ->
        let outcome = analyze "reflective_dll_inject" in
        let f = first_flag outcome in
        let rendered =
          Core.Report.render_provenance ~store:outcome.faros.engine.store
            ~name_of_asid:(Core.Faros_plugin.name_of_asid outcome.faros.kernel)
            f.f_read_prov
        in
        check_b "named" true
          (String.length rendered >= 13
          && String.sub rendered 0 13 = "Export-table:"));
  ]


(* -- provenance queries and JSON export ------------------------------------------ *)

let query_tests =
  [
    Alcotest.test_case "taint map locates the injected payload region" `Slow
      (fun () ->
        let outcome = analyze "reflective_dll_inject" in
        let regions = Core.Prov_query.tainted_regions outcome.faros in
        check_b "payload region in the victim" true
          (List.exists
             (fun (r : Core.Prov_query.region_taint) ->
               r.rt_process = "notepad.exe"
               && r.rt_vaddr = Faros_os.Process.heap_base
               && List.mem Faros_dift.Tag.Ty_netflow r.rt_types)
             regions));
    Alcotest.test_case "summary attributes netflow taint to both processes"
      `Slow (fun () ->
        let outcome = analyze "reflective_dll_inject" in
        let summary = Core.Prov_query.summary_by_process outcome.faros in
        List.iter
          (fun name ->
            match List.find_opt (fun (n, _, _) -> n = name) summary with
            | Some (_, total, netflow) ->
              check_b (name ^ " tainted") true (total > 0);
              check_b (name ^ " netflow") true (netflow > 0)
            | None -> Alcotest.failf "no summary row for %s" name)
          [ "notepad.exe"; "inject_client.exe" ]);
    Alcotest.test_case "clean sample has no netflow in executable regions"
      `Slow (fun () ->
        let outcome = analyze "snipping_tool_s0" in
        let summary = Core.Prov_query.summary_by_process outcome.faros in
        List.iter
          (fun (_, _, netflow) -> check "no netflow" 0 netflow)
          summary);
    Alcotest.test_case "tainted strings locate the payload's artifacts" `Slow
      (fun () ->
        let outcome = analyze "reflective_dll_inject" in
        let found = Core.Prov_query.strings outcome.faros in
        check_b "attacker string found in the victim" true
          (List.exists
             (fun (t : Core.Prov_query.tainted_string) ->
               t.ts_process = "notepad.exe"
               && String.length t.ts_text >= 8
               && Faros_dift.Provenance.has_netflow t.ts_prov)
             found);
        (* a clean sample yields no netflow-tainted executable strings in
           the snipping tool (no network at all) *)
        let clean = analyze "snipping_tool_s0" in
        check "clean" 0 (List.length (Core.Prov_query.strings clean.faros)));
    Alcotest.test_case "json export is well-formed and complete" `Slow
      (fun () ->
        let outcome = analyze "reverse_tcp_dns" in
        let json =
          Core.Report.to_json ~store:outcome.faros.engine.store
            ~name_of_asid:(Core.Faros_plugin.name_of_asid outcome.faros.kernel)
            outcome.report
        in
        check_b "flagged field" true
          (String.length json > 20 && String.sub json 0 16 = {|{"flagged":true,|});
        (* every flag became an object *)
        let count_substr needle hay =
          let n = String.length needle and h = String.length hay in
          let rec go i acc =
            if i + n > h then acc
            else if String.sub hay i n = needle then go (i + 1) (acc + 1)
            else go (i + 1) acc
          in
          go 0 0
        in
        check "one object per flag"
          (List.length (Core.Report.flags outcome.report))
          (count_substr {|"tick":|} json);
        (* balanced braces: cheap well-formedness proxy *)
        check "balanced braces"
          (count_substr "{" json)
          (count_substr "}" json));
    Alcotest.test_case "json escaping handles quotes and control chars" `Quick
      (fun () ->
        let store = Tag_store.create () in
        let r = Core.Report.create () in
        Core.Report.add r
          {
            (mk_flag ~process:{|we"ird|} ()) with
            f_instr_prov = Provenance.empty;
            f_read_prov = Provenance.empty;
          };
        let json = Core.Report.to_json ~store ~name_of_asid:(fun _ -> "?") r in
        check_b "escaped quote" true
          (let needle = {|we\"ird|} in
           let n = String.length needle and h = String.length json in
           let rec go i =
             if i + n > h then false
             else String.sub json i n = needle || go (i + 1)
           in
           go 0));
  ]

let () =
  Alcotest.run "faros_core"
    [
      ("detector", detector_tests);
      ("report", report_tests);
      ("end-to-end", e2e_tests);
      ("config", config_tests);
      ("queries", query_tests);
    ]
