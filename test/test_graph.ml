(* Attack-graph subsystem tests: construction over real corpus samples,
   whodunit slicing back to input origins, determinism of the DOT/JSON
   exporters, and the restrict/forward query helpers. *)

open Faros_graph

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let sample id =
  match Faros_corpus.Registry.find id with
  | Some s -> s
  | None -> Alcotest.failf "unknown sample %s" id

(* Run one registry sample under the FAROS plugin with the graph builder
   attached, then enrich from the finished shadow memory. *)
let build_graph ?metrics (s : Faros_corpus.Registry.sample) =
  let builder = ref None in
  let outcome =
    Faros_corpus.Scenario.analyze
      ~extra_plugins:(fun kernel faros ->
        let b = Build.create ?metrics ~sample:s.id () in
        builder := Some b;
        [ Build.plugin b ~kernel ~faros ])
      s.scenario
  in
  let b = Option.get !builder in
  Build.enrich b outcome.faros;
  (Build.graph b, outcome)

let has_flow g =
  List.exists
    (fun (n : Graph.node) ->
      match n.n_kind with Graph.Flow _ -> true | _ -> false)
    (Graph.nodes g)

(* -- construction + slicing over the corpus -------------------------------- *)

let corpus_tests =
  [
    Alcotest.test_case "reflective injection: Fig. 4 shape" `Quick (fun () ->
        let g, outcome = build_graph (sample "reflective_dll_inject") in
        check_b "flagged" true (Core.Analysis.flagged outcome);
        check_b "nonempty" true (Graph.node_count g > 0);
        check_b "has flow node" true (has_flow g);
        let slices = Slice.slices g in
        check_b "one slice per flag" true
          (List.length slices = List.length (Graph.flag_nodes g));
        check_b "slices exist" true (slices <> []);
        List.iter
          (fun (sl : Slice.t) ->
            check_b "netflow origin" true (Slice.has_netflow_origin sl);
            check_b "chains rendered" true (sl.sl_chains <> []);
            List.iter
              (fun chain ->
                let rendered = Slice.render_chain chain in
                check_b "chain starts at origin" true
                  (String.length rendered > 0
                  && List.exists
                       (fun (o : Graph.node) ->
                         List.hd chain == o || List.mem o chain)
                       sl.sl_origins))
              sl.sl_chains)
          slices);
    Alcotest.test_case "every attack slices back to an input origin" `Slow
      (fun () ->
        List.iter
          (fun (s : Faros_corpus.Registry.sample) ->
            let g, outcome = build_graph s in
            check_b (s.id ^ " flagged") true (Core.Analysis.flagged outcome);
            let slices = Slice.slices g in
            check_b (s.id ^ " has slices") true (slices <> []);
            let network_borne = has_flow g in
            List.iter
              (fun (sl : Slice.t) ->
                check_b (s.id ^ " slice has origins") true
                  (sl.sl_origins <> []);
                check_b (s.id ^ " slice nodes nonempty") true
                  (sl.sl_nodes <> []);
                (* network-borne attacks must trace to the wire; file-borne
                   ones (process hollowing) to a source file instead *)
                if network_borne then
                  check_b
                    (s.id ^ " netflow origin")
                    true
                    (Slice.has_netflow_origin sl))
              slices)
          (Faros_corpus.Registry.attacks ()));
    Alcotest.test_case "benign and JIT samples: no flag sites, empty slices"
      `Quick (fun () ->
        List.iter
          (fun id ->
            let g, outcome = build_graph (sample id) in
            check_b (id ^ " clean") false (Core.Analysis.flagged outcome);
            check (id ^ " no flag nodes") 0 (List.length (Graph.flag_nodes g));
            check (id ^ " no slices") 0 (List.length (Slice.slices g)))
          [ "snipping_tool_s0"; "applet_acceleration" ]);
  ]

(* -- determinism + exporters ------------------------------------------------ *)

let export_tests =
  [
    Alcotest.test_case "DOT and JSON are byte-identical across runs" `Quick
      (fun () ->
        let render () =
          let g, _ = build_graph (sample "reflective_dll_inject") in
          let slices = Slice.slices g in
          (Export.to_dot g, Export.to_json ~slices g)
        in
        let dot1, json1 = render () in
        let dot2, json2 = render () in
        check_s "dot stable" dot1 dot2;
        check_s "json stable" json1 json2);
    Alcotest.test_case "graph JSON passes the hand-rolled checker" `Quick
      (fun () ->
        let g, _ = build_graph (sample "process_hollowing") in
        let json = Export.to_json ~slices:(Slice.slices g) g in
        (match Faros_obs.Json.well_formed json with
        | Ok () -> ()
        | Error e -> Alcotest.failf "malformed graph JSON: %s" e);
        check_b "names the sample" true
          (let re = "process_hollowing" in
           let len = String.length re in
           let rec scan i =
             i + len <= String.length json
             && (String.sub json i len = re || scan (i + 1))
           in
           scan 0));
    Alcotest.test_case "restricting to a slice exports the slice only" `Quick
      (fun () ->
        let g, _ = build_graph (sample "reflective_dll_inject") in
        let sl = List.hd (Slice.slices g) in
        let keep (n : Graph.node) = List.mem n.n_id sl.sl_nodes in
        let sub = Graph.restrict g ~keep in
        check "slice node count" (List.length sl.sl_nodes)
          (Graph.node_count sub);
        check_b "fewer nodes than full graph" true
          (Graph.node_count sub < Graph.node_count g);
        check_b "sub-DOT renders" true (String.length (Export.to_dot sub) > 0));
  ]

(* -- queries + metrics ------------------------------------------------------ *)

let query_tests =
  [
    Alcotest.test_case "forward reachability: flow reaches the flag" `Quick
      (fun () ->
        let g, _ = build_graph (sample "reflective_dll_inject") in
        let flow =
          List.find
            (fun (n : Graph.node) ->
              match n.n_kind with Graph.Flow _ -> true | _ -> false)
            (Graph.nodes g)
        in
        let reach = Slice.forward g flow in
        check_b "start included" true (List.memq flow reach);
        List.iter
          (fun fl -> check_b "flag reachable from flow" true (List.memq fl reach))
          (Graph.flag_nodes g));
    Alcotest.test_case "graph counters land in the metrics registry" `Quick
      (fun () ->
        let metrics = Faros_obs.Metrics.create () in
        let g, _ = build_graph ~metrics (sample "reflective_dll_inject") in
        let json = Faros_obs.Metrics.to_json metrics in
        let mem sub =
          let len = String.length sub in
          let rec scan i =
            i + len <= String.length json
            && (String.sub json i len = sub || scan (i + 1))
          in
          scan 0
        in
        check_b "graph.nodes counter" true (mem "graph.nodes");
        check_b "graph.edges counter" true (mem "graph.edges");
        check_b "graph.os_events counter" true (mem "graph.os_events");
        check_b "graph.flag_sites counter" true (mem "graph.flag_sites");
        ignore (Graph.node_count g));
  ]

let () =
  Alcotest.run "graph"
    [
      ("corpus", corpus_tests);
      ("export", export_tests);
      ("query", query_tests);
    ]
