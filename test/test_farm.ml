(* Tests for the campaign farm: the domain worker pool, per-job
   isolation, crash containment, and the serial/parallel equivalence
   that makes `campaign -j N` trustworthy. *)

open Faros_farm

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* -- the worker pool ----------------------------------------------------- *)

exception Boom of int

(* Pin the spawned-domain count for a test (the pool otherwise caps at
   the host's recommended count, which is 1 on single-core CI), restoring
   the previous environment afterwards. *)
let with_forced_domains n f =
  let old = Sys.getenv_opt "FAROS_FARM_DOMAINS" in
  Unix.putenv "FAROS_FARM_DOMAINS" (string_of_int n);
  Fun.protect f ~finally:(fun () ->
      Unix.putenv "FAROS_FARM_DOMAINS"
        (Option.value old
           ~default:(string_of_int (Domain.recommended_domain_count ()))))

let pool_tests =
  [
    Alcotest.test_case "all jobs complete, in submission order" `Quick
      (fun () ->
        let items = List.init 40 Fun.id in
        let results = Pool.map ~workers:4 (fun i -> i * i) items in
        Alcotest.(check (list int))
          "squares in order"
          (List.map (fun i -> i * i) items)
          (List.map
             (function Ok v -> v | Error _ -> Alcotest.fail "job errored")
             results));
    Alcotest.test_case "a raising job is contained" `Quick (fun () ->
        let results =
          Pool.map ~workers:3
            (fun i -> if i mod 3 = 0 then raise (Boom i) else i)
            (List.init 10 Fun.id)
        in
        List.iteri
          (fun i r ->
            match r with
            | Ok v ->
              check_b "only non-multiples succeed" true (i mod 3 <> 0);
              check "value" i v
            | Error (Boom j) ->
              check_b "only multiples fail" true (i mod 3 = 0);
              check "carried payload" i j
            | Error _ -> Alcotest.fail "wrong exception")
          results);
    Alcotest.test_case "workers survive raising jobs" `Quick (fun () ->
        (* one worker: if the raise killed it, the second job would hang *)
        let pool = Pool.create ~workers:1 () in
        let bad = Pool.submit pool (fun () -> raise (Boom 1)) in
        let good = Pool.submit pool (fun () -> 42) in
        check_b "first errored" true (Pool.await bad = Result.Error (Boom 1));
        check_b "second still ran" true (Pool.await good = Ok 42);
        Pool.shutdown pool);
    Alcotest.test_case "shutdown drains the queue" `Quick (fun () ->
        let pool = Pool.create ~workers:2 () in
        let promises =
          List.init 50 (fun i -> Pool.submit pool (fun () -> i + 1))
        in
        (* shutdown must fulfill every already-submitted promise *)
        Pool.shutdown pool;
        List.iteri
          (fun i p -> check_b "fulfilled" true (Pool.await p = Ok (i + 1)))
          promises);
    Alcotest.test_case "submit after shutdown raises" `Quick (fun () ->
        let pool = Pool.create ~workers:1 () in
        Pool.shutdown pool;
        Pool.shutdown pool (* idempotent *);
        Alcotest.check_raises "rejected"
          (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
            ignore (Pool.submit pool (fun () -> ()))));
    Alcotest.test_case "each worker domain gets its own prov store" `Quick
      (fun () ->
        (* Jobs that intern different tags concurrently: with a shared
           store the id sequences would interleave; with per-job stores
           each job sees a store of exactly its own nodes. *)
        let counts =
          Pool.map ~workers:4
            (fun n ->
              let st = Faros_dift.Prov_intern.create_store () in
              Faros_dift.Prov_intern.set_store st;
              for i = 1 to n do
                ignore (Faros_dift.Prov_intern.singleton (Faros_dift.Tag.Netflow i))
              done;
              Faros_dift.Prov_intern.store_interned_count st)
            [ 5; 10; 15; 20 ]
        in
        Alcotest.(check (list int))
          "each store holds empty + its own singletons"
          [ 6; 11; 16; 21 ]
          (List.map
             (function Ok v -> v | Error _ -> Alcotest.fail "job errored")
             counts));
  ]

(* -- worker telemetry ------------------------------------------------------ *)

let telemetry_pool_tests =
  [
    Alcotest.test_case "worker stats account for every job" `Quick (fun () ->
        let pool = Pool.create ~workers:4 () in
        let promises =
          List.init 30 (fun i -> Pool.submit pool (fun () -> i))
        in
        List.iter (fun p -> ignore (Pool.await p)) promises;
        Pool.shutdown pool;
        let stats = Pool.worker_stats pool in
        check "one stat per spawned worker" (Pool.spawned pool)
          (List.length stats);
        check_b "spawned bounded by request" true (Pool.spawned pool <= 4);
        check "jobs sum to submissions" 30
          (List.fold_left (fun acc s -> acc + s.Pool.ws_jobs) 0 stats);
        check_b "peak depth seen" true (Pool.peak_depth pool >= 1);
        List.iter
          (fun s ->
            check_b "busy time non-negative" true (s.Pool.ws_busy_ns >= 0);
            check_b "idle time non-negative" true (s.Pool.ws_idle_ns >= 0))
          stats);
    Alcotest.test_case "submit_indexed passes a valid worker index" `Quick
      (fun () ->
        let pool = Pool.create ~workers:3 () in
        let spawned = Pool.spawned pool in
        let promises =
          List.init 20 (fun _ ->
              Pool.submit_indexed pool (fun ~worker -> worker))
        in
        let indices =
          List.map
            (fun p ->
              match Pool.await p with
              | Ok w -> w
              | Error _ -> Alcotest.fail "job errored")
            promises
        in
        Pool.shutdown pool;
        List.iter
          (fun w -> check_b "index within spawned range" true
              (w >= 0 && w < spawned))
          indices);
    Alcotest.test_case "raising jobs still count in worker stats" `Quick
      (fun () ->
        let pool = Pool.create ~workers:1 () in
        ignore (Pool.await (Pool.submit pool (fun () -> raise (Boom 0))));
        ignore (Pool.await (Pool.submit pool (fun () -> ())));
        Pool.shutdown pool;
        check "both jobs counted" 2
          (List.fold_left
             (fun acc s -> acc + s.Pool.ws_jobs)
             0 (Pool.worker_stats pool)));
    Alcotest.test_case "idle workers steal from a loaded lane" `Quick
      (fun () ->
        (* Force four real domains (the pool otherwise caps at the host's
           recommendation): one lane gets a long job with fast jobs queued
           behind it, so the other workers MUST steal for every promise
           to resolve before the sleeper wakes. *)
        with_forced_domains 4 (fun () ->
            let pool = Pool.create ~workers:4 () in
            check "four domains spawned" 4 (Pool.spawned pool);
            let slow = Pool.submit pool (fun () -> Unix.sleepf 0.25; -1) in
            let fast =
              List.init 24 (fun i -> Pool.submit pool (fun () -> i))
            in
            List.iteri
              (fun i p -> check_b "fast job ran" true (Pool.await p = Ok i))
              fast;
            ignore (Pool.await slow);
            Pool.shutdown pool;
            let stats = Pool.worker_stats pool in
            check "all jobs counted" 25
              (List.fold_left (fun acc s -> acc + s.Pool.ws_jobs) 0 stats);
            check_b "someone stole" true
              (List.exists (fun s -> s.Pool.ws_steals > 0) stats)));
    Alcotest.test_case "worker_stats is a safe snapshot mid-run" `Quick
      (fun () ->
        with_forced_domains 2 (fun () ->
            let pool = Pool.create ~workers:2 () in
            let promises =
              List.init 16 (fun i ->
                  Pool.submit pool (fun () -> Unix.sleepf 0.01; i))
            in
            (* Snapshot while the domains run: counters mutate under the
               pool mutex, so totals are exact at the instant of the call
               and never exceed the submissions. *)
            let mid = Pool.worker_stats pool in
            let mid_jobs =
              List.fold_left (fun acc s -> acc + s.Pool.ws_jobs) 0 mid
            in
            check_b "mid-run total bounded" true (mid_jobs <= 16);
            List.iter (fun p -> ignore (Pool.await p)) promises;
            Pool.shutdown pool;
            check "final total exact" 16
              (List.fold_left
                 (fun acc s -> acc + s.Pool.ws_jobs)
                 0 (Pool.worker_stats pool))));
  ]

(* -- campaign isolation and verdicts ------------------------------------- *)

let run_ids ?workers ?tick_budget ?deadline ids =
  Campaign.run ?workers ?tick_budget ?deadline
    (List.filter_map Faros_corpus.Registry.find ids)

let verdict_of (c : Campaign.t) id =
  match List.find_opt (fun r -> r.Campaign.jr_id = id) c.results with
  | Some r -> r.Campaign.jr_verdict
  | None -> Alcotest.fail ("no result for " ^ id)

let campaign_tests =
  [
    Alcotest.test_case "a crashing sample becomes an Error verdict" `Quick
      (fun () ->
        (* the hidden crash sample raises out of its record phase; the
           campaign must contain it and still run its neighbours *)
        let crash = Faros_corpus.Registry.crash_test () in
        let others =
          List.filter_map Faros_corpus.Registry.find
            [ "reflective_dll_inject"; "skype_s0" ]
        in
        let c = Campaign.run ~workers:2 ((crash :: others) @ [ crash ]) in
        check "all four ran" 4 (List.length c.results);
        (match verdict_of c crash.id with
        | Campaign.Error msg -> check_b "carries a message" true (msg <> "")
        | v -> Alcotest.fail ("expected Error, got " ^ Campaign.verdict_name v));
        check_b "attack neighbour still flagged" true
          (verdict_of c "reflective_dll_inject" = Campaign.Flagged);
        check_b "benign neighbour still clean" true
          (verdict_of c "skype_s0" = Campaign.Clean);
        check_b "crash is a mismatch" true
          (List.mem crash.id c.mismatches);
        check_b "campaign not ok" false (Campaign.ok c));
    Alcotest.test_case "deadline overrun becomes a Timeout verdict" `Quick
      (fun () ->
        let c = run_ids ~deadline:0.0 [ "reflective_dll_inject" ] in
        check_b "timeout" true
          (verdict_of c "reflective_dll_inject" = Campaign.Timeout);
        check_b "timeout makes the campaign not ok" false (Campaign.ok c));
    Alcotest.test_case "tick budget truncates the run" `Quick (fun () ->
        let c = run_ids ~tick_budget:10 [ "skype_s0" ] in
        match c.results with
        | [ r ] -> check_b "at most 10 ticks" true (r.Campaign.jr_record_ticks <= 10)
        | _ -> Alcotest.fail "one result expected");
    Alcotest.test_case "mismatch list is in registry order" `Quick (fun () ->
        let crash = Faros_corpus.Registry.crash_test () in
        let mk id = { crash with Faros_corpus.Registry.id } in
        let c = Campaign.run ~workers:2 [ mk "c1"; mk "c2"; mk "c3" ] in
        Alcotest.(check (list string))
          "submission order, not completion or reverse order"
          [ "c1"; "c2"; "c3" ] c.mismatches);
  ]

(* -- campaign observability ------------------------------------------------ *)

let contains ~needle hay =
  let n = String.length needle and len = String.length hay in
  let rec go i = i + n <= len && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let campaign_obs_tests =
  [
    Alcotest.test_case
      "profiled campaign streams all six event types, dropping nothing" `Slow
      (fun () ->
        let samples =
          Campaign.filter ~glob:"reflective_*" (Faros_corpus.Registry.all ())
          @ Campaign.filter ~glob:"skype_s0" (Faros_corpus.Registry.all ())
        in
        check_b "slice non-trivial" true (List.length samples >= 2);
        let plain = Campaign.run ~workers:2 samples in
        let sink = Faros_obs.Sink.create () in
        let trace = Faros_obs.Trace.collector () in
        let progress = ref 0 in
        let observed =
          Campaign.run ~workers:2 ~profile:true ~sink ~trace ~farm_metrics:true
            ~on_progress:(fun ~completed ~total:_ _ -> progress := completed)
            samples
        in
        (* observability must not move any verdict *)
        Alcotest.(check (list string))
          "verdicts unchanged"
          (List.map
             (fun (r : Campaign.job_result) ->
               r.jr_id ^ ":" ^ Campaign.verdict_name r.jr_verdict)
             plain.results)
          (List.map
             (fun (r : Campaign.job_result) ->
               r.jr_id ^ ":" ^ Campaign.verdict_name r.jr_verdict)
             observed.results);
        check "progress saw every result" (List.length samples) !progress;
        (* every job ran on a known worker and shipped a profile *)
        List.iter
          (fun (r : Campaign.job_result) ->
            check_b (r.jr_id ^ " has a worker") true (r.jr_worker >= 0);
            check_b
              (r.jr_id ^ " worker within spawned range")
              true
              (r.jr_worker < observed.spawned);
            check_b (r.jr_id ^ " profile enabled") true
              (Faros_obs.Profile.enabled r.jr_profile))
          observed.results;
        (* the fleet-merged profile covers the whole pipeline *)
        let paths =
          List.map
            (fun (s : Faros_obs.Profile.span) -> s.sp_path)
            (Faros_obs.Profile.spans observed.profile)
        in
        List.iter
          (fun p -> check_b ("span " ^ p) true (List.mem p paths))
          [
            "farm.job.setup"; "farm.job.run"; "farm.job.run/replay";
            "farm.job.run/replay/vm.step"; "farm.job.run/graph.enrich";
            "farm.merge";
          ];
        check_b "job count on farm.job.run" true
          ((List.find
              (fun (s : Faros_obs.Profile.span) -> s.sp_path = "farm.job.run")
              (Faros_obs.Profile.spans observed.profile))
             .sp_count = List.length samples);
        (* one stream, zero drops, all six schema types, all valid JSONL *)
        check "zero drops" 0 (Faros_obs.Sink.dropped sink);
        check_b "events buffered" true (Faros_obs.Sink.events sink > 0);
        (match Faros_obs.Json.well_formed_lines (Faros_obs.Sink.contents sink)
         with
        | Ok n -> check "checker agrees with counter" (Faros_obs.Sink.events sink) n
        | Error (line, e) -> Alcotest.failf "line %d: %s" line e);
        let stream = Faros_obs.Sink.contents sink in
        List.iter
          (fun ty ->
            check_b ("stream has " ^ ty) true
              (contains ~needle:(Printf.sprintf {|"type":"%s"|} ty) stream))
          [
            "metric_snapshot"; "trace_event"; "series_point"; "profile_span";
            "job_lifecycle"; "graph_flag";
          ];
        (* the campaign trace uses worker lanes: pid = worker index *)
        check_b "trace collected" true (Faros_obs.Trace.count trace > 0);
        List.iter
          (fun (e : Faros_obs.Trace.event) ->
            check_b "pid is a worker lane" true
              (e.ev_pid >= 0 && e.ev_pid < observed.spawned))
          (Faros_obs.Trace.events trace);
        (* farm telemetry gauges landed in the merged registry *)
        let gauge name =
          Faros_obs.Metrics.gauge_value
            (Faros_obs.Metrics.gauge observed.metrics name)
        in
        check "requested workers gauge" 2 (gauge "farm.workers.requested");
        check "spawned gauge" observed.spawned (gauge "farm.workers.spawned");
        check_b "per-worker jobs gauge" true (gauge "farm.worker.0.jobs" > 0);
        check_b "per-worker steal gauge present" true
          (gauge "farm.worker.0.steals" >= 0);
        check_b "snapshot gauges present" true
          (gauge "corpus.snapshot.images" > 0
          && gauge "corpus.snapshot.late_builds" = 0);
        (* the gauge freezes just before the closing metric_snapshot is
           emitted, so it counts every line except that one *)
        check "sink event count frozen into the registry"
          (Faros_obs.Sink.events sink - 1)
          (gauge "obs.sink.events");
        check "sink drop count frozen into the registry" 0
          (gauge "obs.sink.dropped"));
    Alcotest.test_case "defaults leave the campaign observability-free" `Quick
      (fun () ->
        let c = run_ids [ "reflective_dll_inject" ] in
        check_b "merged profile disabled" false
          (Faros_obs.Profile.enabled c.profile);
        List.iter
          (fun (r : Campaign.job_result) ->
            check_b "job profile disabled" false
              (Faros_obs.Profile.enabled r.jr_profile);
            Alcotest.(check (list reject)) "no trace shipped" [] r.jr_trace)
          c.results);
  ]

(* -- serial/parallel equivalence ------------------------------------------ *)

(* Everything deterministic about a campaign, as one string: verdicts and
   counters per sample, the mismatch list, the rendered matrix, the
   classic summary, and the merged metrics registry.  Wall-clock fields
   are the only thing left out. *)
let fingerprint (c : Campaign.t) =
  String.concat "\n"
    (List.map
       (fun (r : Campaign.job_result) ->
         Printf.sprintf "%s %s %s %b %b %d %d %d %d %d %d %d %d %d %d %b"
           r.jr_id r.jr_category
           (Campaign.verdict_name r.jr_verdict)
           r.jr_diverged r.jr_mismatch r.jr_record_ticks r.jr_replay_ticks
           r.jr_syscalls r.jr_tainted_bytes r.jr_interned_provs
           r.jr_graph_nodes r.jr_graph_edges r.jr_flag_sites r.jr_slice_nodes
           r.jr_slice_origins r.jr_netflow_origin)
       c.results
    @ c.mismatches
    @ [
        Fmt.str "%a" Campaign.pp_matrix c;
        Fmt.str "%a" Campaign.pp_summary c;
        Faros_obs.Metrics.to_json c.metrics;
      ])

let equivalence_tests =
  [
    Alcotest.test_case "campaign -j 4 is byte-identical to serial" `Slow
      (fun () ->
        let serial = Campaign.run ~workers:1 (Faros_corpus.Registry.all ()) in
        let parallel = Campaign.run ~workers:4 (Faros_corpus.Registry.all ()) in
        check "full corpus" 130 (List.length serial.results);
        check_s "identical fingerprints" (fingerprint serial)
          (fingerprint parallel);
        check_b "both ok" true (Campaign.ok serial && Campaign.ok parallel));
  ]

(* -- filtering ------------------------------------------------------------ *)

let glob_tests =
  [
    Alcotest.test_case "glob matching" `Quick (fun () ->
        let m pat s = Campaign.glob_match ~pat s in
        check_b "literal" true (m "skype_s0" "skype_s0");
        check_b "star prefix" true (m "*_s0" "skype_s0");
        check_b "star suffix" true (m "skype*" "skype_s2");
        check_b "star middle" true (m "a*c" "abbbc");
        check_b "star empty run" true (m "a*c" "ac");
        check_b "question mark" true (m "skype_s?" "skype_s2");
        check_b "question needs a char" false (m "skype_s?" "skype_s");
        check_b "no partial match" false (m "skype" "skype_s0");
        check_b "star alone" true (m "*" ""));
    Alcotest.test_case "filter keeps registry order" `Quick (fun () ->
        let ids =
          List.map
            (fun (s : Faros_corpus.Registry.sample) -> s.id)
            (Campaign.filter ~glob:"applet_*" (Faros_corpus.Registry.all ()))
        in
        check "ten applets" 10 (List.length ids);
        check_s "first" "applet_acceleration" (List.hd ids));
  ]

let () =
  Alcotest.run "faros_farm"
    [
      ("pool", pool_tests);
      ("pool-telemetry", telemetry_pool_tests);
      ("campaign", campaign_tests);
      ("campaign-observability", campaign_obs_tests);
      ("equivalence", equivalence_tests);
      ("glob", glob_tests);
    ]
