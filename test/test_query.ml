(* Streaming forensic store tests: segment round-trips back to the exact
   resident graph, the store's merge is commutative and idempotent under
   row shuffles, campaign-shipped segments equal locally-written ones,
   and the 2000-connection acceptance sample stays bounded-memory. *)

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let sample id =
  match Faros_corpus.Registry.find id with
  | Some s -> s
  | None -> Alcotest.failf "unknown sample %s" id

(* One analysis, two consumers: the resident graph and the segment
   writer.  Returns the resident graph, the JSONL rows and the writer's
   stats. *)
let dual_build (s : Faros_corpus.Registry.sample) =
  let sink = Faros_obs.Sink.create () in
  let builder = ref None in
  let writer = ref None in
  let outcome =
    Faros_corpus.Scenario.analyze
      ~extra_plugins:(fun kernel faros ->
        let w = Faros_query.Segment.writer ~sink ~run:s.id () in
        writer := Some w;
        let b =
          Faros_graph.Build.create
            ~consumer:(Faros_query.Segment.consume w)
            ~sample:s.id ()
        in
        builder := Some b;
        [ Faros_graph.Build.plugin b ~kernel ~faros ])
      s.scenario
  in
  let b = Option.get !builder and w = Option.get !writer in
  Faros_graph.Build.enrich b outcome.faros;
  Faros_query.Segment.close w;
  ( Faros_graph.Build.graph b,
    Faros_obs.Sink.lines sink,
    Faros_query.Segment.stats w,
    outcome )

(* Streaming-only: no resident graph at all — the bounded-memory path. *)
let stream_build (s : Faros_corpus.Registry.sample) =
  let sink = Faros_obs.Sink.create () in
  let builder = ref None in
  let writer = ref None in
  let outcome =
    Faros_corpus.Scenario.analyze
      ~extra_plugins:(fun kernel faros ->
        let w = Faros_query.Segment.writer ~sink ~run:s.id () in
        writer := Some w;
        let b =
          Faros_graph.Build.create ~resident:false
            ~consumer:(Faros_query.Segment.consume w)
            ~sample:s.id ()
        in
        builder := Some b;
        [ Faros_graph.Build.plugin b ~kernel ~faros ])
      s.scenario
  in
  let b = Option.get !builder and w = Option.get !writer in
  Faros_graph.Build.enrich b outcome.faros;
  Faros_query.Segment.close w;
  (Faros_obs.Sink.lines sink, Faros_query.Segment.stats w, outcome)

let store_of_lines lines =
  let st = Faros_query.Store.create () in
  match Faros_query.Store.ingest_lines st lines with
  | Ok _ -> st
  | Error e -> Alcotest.failf "ingest: %s" e

let run_graph_exn st run =
  match Faros_query.Store.run_graph st run with
  | Ok g -> g
  | Error e -> Alcotest.failf "reconstruct %s: %s" run e

(* The whodunit answer as text — what `faros graph` and `faros query`
   both print. *)
let slice_text g =
  let b = Buffer.create 256 in
  List.iter
    (fun (s : Faros_graph.Slice.t) ->
      Buffer.add_string b
        (Printf.sprintf "%s <- %d node(s), %d origin(s)\n"
           (Faros_graph.Graph.node_label s.sl_flag)
           (List.length s.sl_nodes)
           (List.length s.sl_origins));
      List.iter
        (fun chain ->
          Buffer.add_string b
            ("  " ^ Faros_graph.Slice.render_chain chain ^ "\n"))
        s.sl_chains)
    (Faros_graph.Slice.slices g);
  Buffer.contents b

let export g =
  Faros_graph.Export.to_json ~slices:(Faros_graph.Slice.slices g) g
  ^ Faros_graph.Export.to_dot g

(* Deterministic shuffle: a seeded LCG, so failures reproduce. *)
let shuffle seed l =
  let a = Array.of_list l in
  let state = ref (seed land 0x3FFFFFFF) in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  for i = Array.length a - 1 downto 1 do
    let j = next (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* -- per-run round trips --------------------------------------------------- *)

let roundtrip_tests =
  List.map
    (fun id ->
      Alcotest.test_case (id ^ ": segment stream round-trips") `Quick
        (fun () ->
          let g, lines, st, _ = dual_build (sample id) in
          check_b "rows written" true (lines <> []);
          check_b "peak bounded by totals" true
            (st.st_peak_live_nodes <= Faros_graph.Graph.node_count g);
          let store = store_of_lines lines in
          let g' = run_graph_exn store id in
          check "nodes" (Faros_graph.Graph.node_count g)
            (Faros_graph.Graph.node_count g');
          check "edges" (Faros_graph.Graph.edge_count g)
            (Faros_graph.Graph.edge_count g');
          check_s "export byte-identical" (export g) (export g');
          check_s "slices byte-identical" (slice_text g) (slice_text g')))
    [
      "reflective_dll_inject";
      "process_hollowing";
      "darkcomet_injection";
      "reflective_dll_inject_transient";
      "netd_staged_c2";
    ]

(* -- the store's merge laws ------------------------------------------------ *)

let merge_tests =
  [
    Alcotest.test_case "shuffled + duplicated ingest is byte-identical"
      `Quick (fun () ->
        let _, l1, _, _ = dual_build (sample "reflective_dll_inject") in
        let _, l2, _, _ = dual_build (sample "darkcomet_injection") in
        let lines = l1 @ l2 in
        let reference = store_of_lines lines in
        let ref_text =
          slice_text (run_graph_exn reference "reflective_dll_inject")
          ^ slice_text (run_graph_exn reference "darkcomet_injection")
          ^ export (Result.get_ok (Faros_query.Store.merged_graph reference))
        in
        let prop =
          QCheck.Test.make ~name:"merge commutes and dedups" ~count:25
            QCheck.(pair small_int small_int)
            (fun (seed, dup) ->
              (* any interleaving of the two runs' rows, with a prefix
                 re-ingested on top: same store, same bytes out *)
              let shuffled = shuffle (seed + 1) lines in
              let dups =
                List.filteri (fun i _ -> i mod (1 + (dup mod 7)) = 0) shuffled
              in
              let st = store_of_lines (shuffled @ dups) in
              let text =
                slice_text (run_graph_exn st "reflective_dll_inject")
                ^ slice_text (run_graph_exn st "darkcomet_injection")
                ^ export (Result.get_ok (Faros_query.Store.merged_graph st))
              in
              text = ref_text
              && (Faros_query.Store.totals st).t_dups = List.length dups)
        in
        QCheck.Test.check_exn prop);
    Alcotest.test_case "re-ingesting a whole file is a no-op" `Quick
      (fun () ->
        let _, lines, _, _ = dual_build (sample "process_hollowing") in
        let st = store_of_lines lines in
        let t1 = Faros_query.Store.totals st in
        (match Faros_query.Store.ingest_lines st lines with
        | Ok fresh -> check "no fresh rows" 0 fresh
        | Error e -> Alcotest.failf "re-ingest: %s" e);
        let t2 = Faros_query.Store.totals st in
        check "nodes unchanged" t1.t_nodes t2.t_nodes;
        check "edges unchanged" t1.t_edges t2.t_edges);
    Alcotest.test_case "malformed line reports its number" `Quick (fun () ->
        let st = Faros_query.Store.create () in
        match Faros_query.Store.ingest_lines st [ "{\"v\":1}"; "{nope" ] with
        | Ok _ -> Alcotest.fail "expected a parse error"
        | Error e ->
          let contains_line2 =
            let sub = "line 2" in
            let n = String.length sub in
            let rec scan i =
              i + n <= String.length e
              && (String.sub e i n = sub || scan (i + 1))
            in
            scan 0
          in
          check_b "line 2 named" true contains_line2);
  ]

(* -- the campaign pipeline ------------------------------------------------- *)

let campaign_tests =
  [
    Alcotest.test_case
      "full core corpus: store slices match resident graphs byte-for-byte"
      `Slow (fun () ->
        let c =
          Faros_farm.Campaign.run ~workers:4 ~graph_segments:true
            (Faros_corpus.Registry.all ())
        in
        check_b "campaign ok" true (Faros_farm.Campaign.ok c);
        let st = Faros_query.Store.create () in
        List.iter
          (fun (r : Faros_farm.Campaign.job_result) ->
            check_b (r.jr_id ^ " shipped segments") true (r.jr_segments <> []);
            match Faros_query.Store.ingest_lines st r.jr_segments with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: %s" r.jr_id e)
          c.results;
        let totals = Faros_query.Store.totals st in
        check "every run ingested" (List.length c.results) totals.t_runs;
        check "every run complete" (List.length c.results) totals.t_complete;
        (* every flagged sample: the store's reconstruction answers the
           whodunit byte-identically to a fresh resident build, and the
           worker's shipped rows equal a local writer's rows *)
        List.iter
          (fun (r : Faros_farm.Campaign.job_result) ->
            if r.jr_verdict = Faros_farm.Campaign.Flagged then begin
              let g, lines, _, _ = dual_build (sample r.jr_id) in
              check_b
                (r.jr_id ^ ": worker rows = local rows")
                true
                (r.jr_segments = lines);
              let g' = run_graph_exn st r.jr_id in
              check_s (r.jr_id ^ ": slices") (slice_text g) (slice_text g');
              check_s (r.jr_id ^ ": export") (export g) (export g')
            end)
          c.results;
        match Faros_query.Store.origins st with
        | Error e -> Alcotest.failf "origins: %s" e
        | Ok origins ->
          check_b "some origin reaches multiple runs" true
            (List.exists
               (fun (o : Faros_query.Store.origin) ->
                 List.length o.o_runs > 1)
               origins));
  ]

(* -- the bounded-memory acceptance sample ---------------------------------- *)

let acceptance_tests =
  [
    Alcotest.test_case
      "netd_inject_2000: O(live) residency, one guilty 5-tuple" `Slow
      (fun () ->
        let s = sample "netd_inject_2000" in
        let lines, st, outcome = stream_build s in
        check_b "flagged" true (Core.Analysis.flagged outcome);
        check_b "ran within its own budget" true
          (outcome.replay.replay_ticks < s.scenario.max_ticks);
        (* sublinear residency: thousands of nodes pass through, only a
           handful are ever live at once *)
        check_b "spilled thousands of nodes" true (st.st_spilled_nodes > 4000);
        check_b
          (Printf.sprintf "peak live nodes (%d) is O(1) in connections"
             st.st_peak_live_nodes)
          true
          (st.st_peak_live_nodes * 20 < st.st_spilled_nodes);
        check_b "peak live edges bounded too" true
          (st.st_peak_live_edges * 20 < st.st_spilled_edges);
        check_b "stream rotated segments" true (st.st_segments > 1);
        (* the whodunit slice pins exactly the guilty connection *)
        let _, sched, guilty =
          Faros_corpus.Servers.inject_under_load ~clients:2000
            ~worker_close:true ~arrival:(Faros_netd.Gen.Uniform 1000)
            ~name:"netd_inject_2000" ()
        in
        let gf = Faros_corpus.Servers.guilty_flow sched guilty in
        let guilty_label =
          Printf.sprintf "NetFlow %s:%d -> %s:%d"
            (Faros_os.Types.Ip.to_string gf.Faros_os.Types.src_ip)
            gf.Faros_os.Types.src_port
            (Faros_os.Types.Ip.to_string gf.Faros_os.Types.dst_ip)
            gf.Faros_os.Types.dst_port
        in
        let store = store_of_lines lines in
        let g = run_graph_exn store s.id in
        let slices = Faros_graph.Slice.slices g in
        check_b "slices exist" true (slices <> []);
        List.iter
          (fun (sl : Faros_graph.Slice.t) ->
            check (Printf.sprintf "one origin for %s"
                     (Faros_graph.Graph.node_label sl.sl_flag))
              1
              (List.length sl.sl_origins);
            List.iter
              (fun o ->
                check_s "origin is the guilty flow" guilty_label
                  (Faros_graph.Graph.node_label o))
              sl.sl_origins)
          slices);
    Alcotest.test_case "worker close retires flows mid-run" `Quick (fun () ->
        let scn, _ =
          Faros_corpus.Servers.custom_load ~worker_close:true
            ~name:"query_close_probe"
            ~payloads:
              [
                [ "GET /a HTTP/1.0\r\n\r\n" ];
                [ "GET /b HTTP/1.0\r\n\r\n" ];
                [ "GET /c HTTP/1.0\r\n\r\n" ];
                [ "GET /d HTTP/1.0\r\n\r\n" ];
              ]
            ()
        in
        let s =
          {
            (sample "netd_benign_load") with
            Faros_corpus.Registry.id = "query_close_probe";
            scenario = scn;
          }
        in
        let g, lines, st, _ = dual_build s in
        (* some nodes retired before the final drain *)
        check_b "spills happened before close" true
          (st.st_peak_live_nodes < Faros_graph.Graph.node_count g);
        let store = store_of_lines lines in
        let g' = run_graph_exn store "query_close_probe" in
        check_s "round-trip" (export g) (export g'));
  ]

(* -- Jsonv ------------------------------------------------------------------ *)

let jsonv_tests =
  [
    Alcotest.test_case "parses what the sinks emit" `Quick (fun () ->
        let row =
          {|{"v":1,"type":"graph_node","run":"r","seq":3,"ord":0,"ident":"proc|ab|x:0","kind":"process","pid":100,"name":"a \"b\" \\ c","tainted":0}|}
        in
        match Faros_query.Jsonv.parse row with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok v ->
          let geti k = Option.value ~default:(-1) (Faros_query.Jsonv.int_mem v k) in
          let gets k = Option.value ~default:"" (Faros_query.Jsonv.str_mem v k) in
          check "seq" 3 (geti "seq");
          check_s "name unescaped" "a \"b\" \\ c" (gets "name");
          check_s "ident" "proc|ab|x:0" (gets "ident"));
    Alcotest.test_case "render round-trips" `Quick (fun () ->
        let src = {|{"a":[1,-2,true,null,"x\ny"],"b":{"c":3.5,"d":""}}|} in
        match Faros_query.Jsonv.parse src with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok v -> (
          let rendered = Faros_query.Jsonv.render v in
          match Faros_query.Jsonv.parse rendered with
          | Error e -> Alcotest.failf "reparse: %s" e
          | Ok v' ->
            check_s "stable" rendered (Faros_query.Jsonv.render v')));
    Alcotest.test_case "rejects trailing garbage and bad tokens" `Quick
      (fun () ->
        let bad = [ "{"; "[1,]"; "{\"a\":}"; "nul"; "{\"a\":1}x"; "\"\\q\"" ] in
        List.iter
          (fun s ->
            match Faros_query.Jsonv.parse s with
            | Ok _ -> Alcotest.failf "accepted %S" s
            | Error _ -> ())
          bad);
  ]

let () =
  Alcotest.run "query"
    [
      ("jsonv", jsonv_tests);
      ("roundtrip", roundtrip_tests);
      ("merge", merge_tests);
      ("campaign", campaign_tests);
      ("acceptance", acceptance_tests);
    ]
