(* Tests for the DIFT library: tags, the tag store, provenance lists
   (with qcheck properties), shadow state, Table I propagation, and the
   engine's per-instruction and per-event semantics. *)

open Faros_dift

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)

(* Shorthand: intern a literal tag list as a provenance value. *)
let pl = Provenance.of_list

(* -- tags ------------------------------------------------------------------ *)

let arb_tag =
  QCheck.Gen.(
    let* i = int_range 0 0xFFFF in
    oneofl [ Tag.Netflow i; Tag.Process i; Tag.File i; Tag.Export_table i ])

let tag_roundtrip =
  QCheck.Test.make ~count:300 ~name:"prov_tag 3-byte encode/decode roundtrip"
    (QCheck.make arb_tag) (fun t ->
      let s = Tag.encode t in
      String.length s = 3 && Tag.decode s = t)

let tag_tests =
  [
    Alcotest.test_case "type bytes per Fig. 6" `Quick (fun () ->
        check "netflow" 1 (Char.code (Tag.encode (Tag.Netflow 0)).[0]);
        check "file" 2 (Char.code (Tag.encode (Tag.File 0)).[0]);
        check "process" 3 (Char.code (Tag.encode (Tag.Process 0)).[0]);
        check "export" 4 (Char.code (Tag.encode (Tag.Export_table 0)).[0]));
    Alcotest.test_case "index encodes little-endian in bytes 2-3" `Quick
      (fun () ->
        let s = Tag.encode (Tag.Process 0xBEEF) in
        check "lo" 0xEF (Char.code s.[1]);
        check "hi" 0xBE (Char.code s.[2]));
    Alcotest.test_case "oversized index rejected" `Quick (fun () ->
        match Tag.encode (Tag.File 0x10000) with
        | exception Tag.Bad_prov_tag _ -> ()
        | _ -> Alcotest.fail "expected Bad_prov_tag");
    Alcotest.test_case "bad decode rejected" `Quick (fun () ->
        List.iter
          (fun s ->
            match Tag.decode s with
            | exception Tag.Bad_prov_tag _ -> ()
            | _ -> Alcotest.failf "accepted %S" s)
          [ ""; "\x01\x00"; "\x07\x00\x00"; "\x00\x00\x00\x00" ]);
    QCheck_alcotest.to_alcotest tag_roundtrip;
  ]

(* -- tag store -------------------------------------------------------------- *)

let flow a b =
  { Faros_os.Types.src_ip = a; src_port = 1; dst_ip = b; dst_port = 2 }

let store_tests =
  [
    Alcotest.test_case "interning is stable" `Quick (fun () ->
        let s = Tag_store.create () in
        let t1 = Tag_store.netflow s (flow 1 2) in
        let t2 = Tag_store.netflow s (flow 1 2) in
        let t3 = Tag_store.netflow s (flow 3 4) in
        check_b "same" true (Tag.equal t1 t2);
        check_b "different" false (Tag.equal t1 t3);
        check "count" 2 (Tag_store.netflow_count s));
    Alcotest.test_case "reverse lookup returns the payload" `Quick (fun () ->
        let s = Tag_store.create () in
        (match Tag_store.process s 42 with
        | Tag.Process i ->
          Alcotest.(check (option int)) "cr3" (Some 42) (Tag_store.cr3_of s i)
        | _ -> Alcotest.fail "expected process tag");
        match Tag_store.file s ~name:"f" ~version:3 with
        | Tag.File i -> (
          match Tag_store.file_of s i with
          | Some { file_name; file_version } ->
            Alcotest.(check string) "name" "f" file_name;
            check "version" 3 file_version
          | None -> Alcotest.fail "missing file")
        | _ -> Alcotest.fail "expected file tag");
    Alcotest.test_case "file versions intern separately" `Quick (fun () ->
        let s = Tag_store.create () in
        let a = Tag_store.file s ~name:"f" ~version:1 in
        let b = Tag_store.file s ~name:"f" ~version:2 in
        check_b "distinct" false (Tag.equal a b);
        check "two entries" 2 (Tag_store.file_count s));
    Alcotest.test_case "overflow raises at intern time, at 65536 entries" `Quick
      (fun () ->
        (* indices 0..0xFFFF fit the 16-bit wire format; the 65537th
           distinct payload must be refused by the store itself, naming
           the culprit, not by Tag.encode much later *)
        let s = Tag_store.create () in
        for v = 0 to 0xFFFF do
          ignore (Tag_store.file s ~name:"f" ~version:v)
        done;
        check "full" 0x10000 (Tag_store.file_count s);
        (match Tag_store.file s ~name:"f" ~version:0 with
        | Tag.File 0 -> () (* re-interning an existing payload still works *)
        | _ -> Alcotest.fail "expected File 0");
        match Tag_store.file s ~name:"f" ~version:0x10000 with
        | exception Tag_store.Overflow msg ->
          check_b "names the store" true
            (String.length msg >= 4 && String.sub msg 0 4 = "file")
        | _ -> Alcotest.fail "expected Overflow");
  ]

(* -- provenance ------------------------------------------------------------- *)

let arb_prov = QCheck.Gen.(list_size (int_range 0 10) arb_tag)

let prov_union_keeps_membership =
  QCheck.Test.make ~count:300 ~name:"union contains both operands' tags"
    (QCheck.make QCheck.Gen.(pair arb_prov arb_prov))
    (fun (a, b) ->
      let u = Provenance.union (pl a) (pl b) in
      List.for_all (fun t -> Provenance.mem t u) a
      && List.for_all (fun t -> Provenance.mem t u) b)

let prov_union_no_dups =
  QCheck.Test.make ~count:300 ~name:"union of duplicate-free lists is duplicate-free"
    (QCheck.make QCheck.Gen.(pair arb_prov arb_prov))
    (fun (a, b) ->
      (* provenance lists are only ever built by prepend/union, so they are
         duplicate free; mirror that invariant in the inputs *)
      let dedup l = List.sort_uniq compare l in
      let u = Provenance.union (pl (dedup a)) (pl (dedup b)) in
      let l = Provenance.to_list u in
      List.length l = List.length (List.sort_uniq compare l))

let prov_prepend_idempotent_head =
  QCheck.Test.make ~count:300 ~name:"prepend of the current head is a no-op"
    (QCheck.make QCheck.Gen.(pair arb_tag arb_prov))
    (fun (t, p) ->
      let p1 = Provenance.prepend t (pl p) in
      Provenance.prepend t p1 == p1)

let prov_capped =
  QCheck.Test.make ~count:100 ~name:"length is capped"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 200) arb_tag))
    (fun big ->
      Provenance.length (Provenance.union Provenance.empty (pl big))
      <= Provenance.max_length)

(* The interning invariant: structural equality is physical equality, so
   the same tag list built twice is the very same node with the same id. *)
let prov_interned_unique =
  QCheck.Test.make ~count:300 ~name:"equal lists intern to the same node"
    (QCheck.make arb_prov)
    (fun l ->
      let a = pl l and b = pl l in
      a == b && Provenance.equal a b
      && Prov_intern.id a = Prov_intern.id b
      && Provenance.to_list a = Provenance.to_list b)

(* Union is not associative on *order* (the cap can differ), but type
   membership — what the detector reads — must be. *)
let prov_union_type_assoc =
  QCheck.Test.make ~count:300
    ~name:"union type-membership is associative"
    (QCheck.make QCheck.Gen.(triple arb_prov arb_prov arb_prov))
    (fun (a, b, c) ->
      let a = pl a and b = pl b and c = pl c in
      let l = Provenance.union (Provenance.union a b) c in
      let r = Provenance.union a (Provenance.union b c) in
      List.for_all
        (fun ty -> Provenance.has_type ty l = Provenance.has_type ty r)
        [ Tag.Ty_netflow; Tag.Ty_process; Tag.Ty_file; Tag.Ty_export ])

(* Order preservation + cap: union is a's tags in order, then b's missing
   tags in order, truncated to the newest max_length entries. *)
let prov_union_order =
  QCheck.Test.make ~count:300
    ~name:"union preserves order and caps keeping newest-first"
    (QCheck.make QCheck.Gen.(pair arb_prov arb_prov))
    (fun (a, b) ->
      let pa = pl a and pb = pl b in
      let la = Provenance.to_list pa in
      let extra =
        List.filter (fun t -> not (Provenance.mem t pa)) (Provenance.to_list pb)
      in
      let expect =
        List.filteri (fun i _ -> i < Provenance.max_length) (la @ extra)
      in
      Provenance.to_list (Provenance.union pa pb) = expect)

let prov_tests =
  [
    Alcotest.test_case "prepend puts newest first" `Quick (fun () ->
        let p = Provenance.prepend (Tag.Process 1) (pl [ Tag.Netflow 0 ]) in
        check_b "head" true (List.hd (Provenance.to_list p) = Tag.Process 1);
        check "len" 2 (Provenance.length p));
    Alcotest.test_case "prepend of a deeper tag moves it to the front" `Quick
      (fun () ->
        (* present anywhere — not just at the head — must not duplicate *)
        let p = pl [ Tag.Process 2; Tag.Process 1; Tag.Netflow 0 ] in
        let p' = Provenance.prepend (Tag.Process 1) p in
        Alcotest.(check (list int))
          "moved to front, not duplicated" [ 1; 2 ]
          (Provenance.process_indices p');
        check "len" 3 (Provenance.length p');
        check_b "origin kept" true (Provenance.has_netflow p'));
    Alcotest.test_case
      "alternating touches do not evict the origin tag (regression)" `Quick
      (fun () ->
        (* Two processes ping-ponging over one byte used to append a tag per
           touch — the head-only dedupe never fired — until the cap evicted
           the netflow origin.  With dedupe-anywhere the history stays at
           three entries and the origin survives any number of touches. *)
        let p = ref (pl [ Tag.Netflow 0 ]) in
        for i = 1 to 100 do
          p := Provenance.prepend (Tag.Process (i mod 2)) !p
        done;
        check "length stays bounded" 3 (Provenance.length !p);
        check_b "origin netflow survives" true (Provenance.has_netflow !p);
        Alcotest.(check (list int))
          "both processes, newest first" [ 0; 1 ]
          (Provenance.process_indices !p));
    Alcotest.test_case "union is order preserving" `Quick (fun () ->
        let u =
          Provenance.union (pl [ Tag.Netflow 0 ]) (pl [ Tag.File 1; Tag.Netflow 0 ])
        in
        Alcotest.(check bool)
          "order" true
          (Provenance.to_list u = [ Tag.Netflow 0; Tag.File 1 ]));
    Alcotest.test_case "type queries" `Quick (fun () ->
        let p = pl [ Tag.Process 1; Tag.Netflow 0; Tag.Export_table 0 ] in
        check_b "nf" true (Provenance.has_netflow p);
        check_b "export" true (Provenance.has_export p);
        check_b "file" false (Provenance.has_file p);
        check "confluence" 3 (Provenance.confluence p));
    Alcotest.test_case "process_indices dedupes, preserves order" `Quick
      (fun () ->
        let p = pl [ Tag.Process 2; Tag.Netflow 0; Tag.Process 1; Tag.Process 2 ] in
        Alcotest.(check (list int)) "indices" [ 2; 1 ] (Provenance.process_indices p);
        check "distinct count cached" 2 (Provenance.distinct_process_count p));
    Alcotest.test_case "empty provenance" `Quick (fun () ->
        check_b "empty" true (Provenance.is_empty Provenance.empty);
        check "confluence" 0 (Provenance.confluence Provenance.empty);
        check "empty is id 0" 0 (Prov_intern.id Provenance.empty));
    QCheck_alcotest.to_alcotest prov_union_keeps_membership;
    QCheck_alcotest.to_alcotest prov_union_no_dups;
    QCheck_alcotest.to_alcotest prov_prepend_idempotent_head;
    QCheck_alcotest.to_alcotest prov_capped;
    QCheck_alcotest.to_alcotest prov_interned_unique;
    QCheck_alcotest.to_alcotest prov_union_type_assoc;
    QCheck_alcotest.to_alcotest prov_union_order;
  ]

(* -- shadow + propagate ------------------------------------------------------ *)

let shadow_tests =
  [
    Alcotest.test_case "absent means empty; empty removes" `Quick (fun () ->
        let s = Shadow.create () in
        check_b "empty" true (Provenance.is_empty (Shadow.get_mem s 5));
        Shadow.set_mem s 5 (pl [ Tag.Netflow 0 ]);
        check "one" 1 (Shadow.tainted_bytes s);
        Shadow.set_mem s 5 Provenance.empty;
        check "removed" 0 (Shadow.tainted_bytes s));
    Alcotest.test_case "registers keyed by asid" `Quick (fun () ->
        let s = Shadow.create () in
        Shadow.set_reg s ~asid:1 3 (pl [ Tag.Netflow 0 ]);
        check_b "other asid clean" true
          (Provenance.is_empty (Shadow.get_reg s ~asid:2 3));
        check_b "same asid tainted" false
          (Provenance.is_empty (Shadow.get_reg s ~asid:1 3)));
    Alcotest.test_case "range union" `Quick (fun () ->
        let s = Shadow.create () in
        Shadow.set_mem s 0 (pl [ Tag.Netflow 0 ]);
        Shadow.set_mem s 2 (pl [ Tag.File 1 ]);
        let p = Shadow.get_mem_range s 0 4 in
        check "both" 2 (Provenance.length p));
    Alcotest.test_case "clear resets everything" `Quick (fun () ->
        let s = Shadow.create () in
        Shadow.set_mem s 0 (pl [ Tag.Netflow 0 ]);
        Shadow.set_reg s ~asid:1 0 (pl [ Tag.Netflow 0 ]);
        Shadow.clear s;
        check "mem" 0 (Shadow.tainted_bytes s);
        check "regs" 0 (Shadow.tainted_regs s));
    Alcotest.test_case "Table I copy/union/delete" `Quick (fun () ->
        let s = Shadow.create () in
        Shadow.set_mem s 0 (pl [ Tag.Netflow 0 ]);
        Shadow.set_reg s ~asid:1 2 (pl [ Tag.File 1 ]);
        Propagate.copy s ~dst:(Propagate.Reg (1, 0)) ~src:(Propagate.Mem 0);
        check_b "copied" true
          (Provenance.equal (Shadow.get_reg s ~asid:1 0) (pl [ Tag.Netflow 0 ]));
        Propagate.union s ~dst:(Propagate.Mem 9) ~src1:(Propagate.Mem 0)
          ~src2:(Propagate.Reg (1, 2));
        check "union" 2 (Provenance.length (Shadow.get_mem s 9));
        Propagate.delete s (Propagate.Mem 9);
        check_b "deleted" true (Provenance.is_empty (Shadow.get_mem s 9)));
    Alcotest.test_case "range ops round-trip across a page boundary" `Quick
      (fun () ->
        let s = Shadow.create () in
        let prov = pl [ Tag.Netflow 0; Tag.Process 1 ] in
        (* 12 bytes straddling the first page boundary: 4090..4101 *)
        let base = Shadow.page_size - 6 in
        Shadow.set_mem_range s base 12 prov;
        check "tainted count" 12 (Shadow.tainted_bytes s);
        for k = 0 to 11 do
          check_b
            (Printf.sprintf "byte %d" k)
            true
            (Provenance.equal (Shadow.get_mem s (base + k)) prov)
        done;
        check_b "byte before clean" true
          (Provenance.is_empty (Shadow.get_mem s (base - 1)));
        check_b "byte after clean" true
          (Provenance.is_empty (Shadow.get_mem s (base + 12)));
        check_b "range read unions across the boundary" true
          (Provenance.equal (Shadow.get_mem_range s base 12) prov);
        (* clearing the straddling range drops both pages' slots *)
        Shadow.set_mem_range s base 12 Provenance.empty;
        check "cleared" 0 (Shadow.tainted_bytes s));
    Alcotest.test_case "iter_mem visits exactly the tainted bytes" `Quick
      (fun () ->
        let s = Shadow.create () in
        let prov = pl [ Tag.File 3 ] in
        List.iter
          (fun a -> Shadow.set_mem s a prov)
          [ 0; Shadow.page_size - 1; Shadow.page_size; 3 * Shadow.page_size + 7 ];
        let seen = ref [] in
        Shadow.iter_mem s (fun paddr p ->
            check_b "prov" true (Provenance.equal p prov);
            seen := paddr :: !seen);
        Alcotest.(check (list int))
          "addresses"
          [ 0; Shadow.page_size - 1; Shadow.page_size; 3 * Shadow.page_size + 7 ]
          (List.sort compare !seen);
        check "count matches" 4 (Shadow.tainted_bytes s));
    Alcotest.test_case "clear drops materialized pages, not just contents"
      `Quick
      (fun () ->
        (* Campaign jobs reuse shadows across samples: after clear, the
           page directory must give its capacity back, not keep zeroed
           pages resident. *)
        let s = Shadow.create () in
        Shadow.set_mem_range s 0 64 (pl [ Tag.Netflow 0 ]);
        Shadow.set_mem s (5 * Shadow.page_size) (pl [ Tag.File 1 ]);
        Shadow.set_reg s ~asid:1 0 (pl [ Tag.Netflow 0 ]);
        Shadow.set_flags s ~asid:1 (pl [ Tag.Netflow 0 ]);
        check_b "pages materialized" true (Shadow.pages s > 0);
        let gen_before = Shadow.generation s in
        Shadow.clear s;
        check "no pages resident" 0 (Shadow.pages s);
        check "tainted bytes back to baseline" 0 (Shadow.tainted_bytes s);
        check "tainted regs back to baseline" 0 (Shadow.tainted_regs s);
        check_b "flags back to baseline" true
          (Provenance.is_empty (Shadow.get_flags s ~asid:1));
        check_b "clear bumps the generation" true
          (Shadow.generation s > gen_before));
  ]

(* Random round-trips: writes through set_mem_range at arbitrary offsets
   and widths (often straddling pages) must read back byte-exact. *)
let shadow_range_roundtrip =
  QCheck.Test.make ~count:200 ~name:"set_mem_range/get_mem round-trip"
    (QCheck.make
       QCheck.Gen.(
         triple (int_range 0 (5 * 4096)) (int_range 1 64)
           (list_size (int_range 1 4) arb_tag)))
    (fun (base, width, tags) ->
      let s = Shadow.create () in
      let prov = pl tags in
      Shadow.set_mem_range s base width prov;
      Shadow.tainted_bytes s = width
      && (let ok = ref true in
          for k = 0 to width - 1 do
            if not (Provenance.equal (Shadow.get_mem s (base + k)) prov) then
              ok := false
          done;
          !ok)
      && Provenance.equal (Shadow.get_mem_range s base width) prov
      &&
      (Shadow.set_mem_range s base width Provenance.empty;
       Shadow.tainted_bytes s = 0))

(* The per-page live counters feed the fast path's O(1) page probes, so
   they must stay exact on every mutation path — single-byte sets, range
   sets (including the bulk fill of a just-materialized page), overwrites
   and clears.  Cross-checked against a brute-force page scan. *)
let page_counter_exact =
  QCheck.Test.make ~count:100 ~name:"page_tainted_bytes matches a brute-force scan"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 20)
           (triple
              (int_range 0 ((3 * 4096) - 65))
              (int_range 1 64)
              (option (list_size (int_range 1 3) arb_tag)))))
    (fun writes ->
      let s = Shadow.create () in
      List.iter
        (fun (base, width, tags) ->
          let prov =
            match tags with None -> Provenance.empty | Some ts -> pl ts
          in
          if width = 1 then Shadow.set_mem s base prov
          else Shadow.set_mem_range s base width prov)
        writes;
      let ok = ref true in
      for pno = 0 to 3 do
        let base = pno * Shadow.page_size in
        let brute = ref 0 in
        for off = 0 to Shadow.page_size - 1 do
          if not (Provenance.is_empty (Shadow.get_mem s (base + off))) then
            incr brute
        done;
        if Shadow.page_tainted_bytes s base <> !brute then ok := false;
        if Shadow.page_tainted s base <> (!brute > 0) then ok := false
      done;
      !ok)

let shadow_prop_tests =
  [
    QCheck_alcotest.to_alcotest shadow_range_roundtrip;
    QCheck_alcotest.to_alcotest page_counter_exact;
  ]

(* -- engine ------------------------------------------------------------------ *)

(* A little harness: machine + space + program, an engine with [policy], and
   helpers to taint guest memory and read taint back. *)
type harness = {
  machine : Faros_vm.Machine.t;
  space : Faros_vm.Mmu.space;
  cpu : Faros_vm.Cpu.t;
  engine : Engine.t;
}

let harness ?(policy = Policy.faros_default) items =
  let machine = Faros_vm.Machine.create () in
  let space = Faros_vm.Mmu.create_space machine.mmu ~name:"guest" in
  Faros_vm.Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:4;
  Faros_vm.Mmu.map machine.mmu space ~vaddr:0x7F000 ~pages:2;
  let prog = Faros_vm.Asm.assemble ~origin:0x1000 items in
  Faros_vm.Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
  let cpu = Faros_vm.Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:0x80000 in
  let engine = Engine.create ~policy () in
  Faros_vm.Machine.add_exec_hook machine (fun c e -> Engine.on_exec engine c e);
  { machine; space; cpu; engine }

let run h =
  let rec go n =
    if n > 10_000 then Alcotest.fail "no halt"
    else
      match Faros_vm.Machine.step h.machine h.cpu with
      | Ok _ when h.cpu.halted -> ()
      | Ok _ -> go (n + 1)
      | Error f -> Alcotest.failf "fault %a" Faros_vm.Cpu.pp_fault f
  in
  go 0

let paddr h vaddr = Faros_vm.Mmu.translate h.machine.mmu ~asid:h.space.asid vaddr

(* Taint a guest byte from a literal tag list (interned on the way in). *)
let taint_mem h vaddr tags =
  Shadow.set_mem h.engine.shadow (paddr h vaddr) (pl tags)

let mem_prov h vaddr = Shadow.get_mem h.engine.shadow (paddr h vaddr)

let reg_prov h r = Shadow.get_reg h.engine.shadow ~asid:h.space.asid r

let i x = Faros_vm.Asm.I x
let r0 = Faros_vm.Isa.r0
let r1 = Faros_vm.Isa.r1
let r2 = Faros_vm.Isa.r2
let r3 = Faros_vm.Isa.r3

let nf = Tag.Netflow 0

let engine_tests =
  [
    Alcotest.test_case "load copies memory taint to register" `Quick (fun () ->
        let h =
          harness [ i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000)); i Faros_vm.Isa.Halt ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "r0 tainted" true (Provenance.has_netflow (reg_prov h r0));
        (* the executing process's tag was prepended on access *)
        check_b "process tag" true
          (Provenance.process_indices (reg_prov h r0) <> []));
    Alcotest.test_case "store copies register taint to memory" `Quick (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000));
              i (Faros_vm.Isa.Store (1, Faros_vm.Isa.abs 0x2100, r0));
              i Faros_vm.Isa.Halt;
            ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "dst tainted" true (Provenance.has_netflow (mem_prov h 0x2100)));
    Alcotest.test_case "overwrite with clean data clears taint" `Quick (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Mov_ri (r0, 0));
              i (Faros_vm.Isa.Store (1, Faros_vm.Isa.abs 0x2000, r0));
              i Faros_vm.Isa.Halt;
            ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "cleared" true (Provenance.is_empty (mem_prov h 0x2000)));
    Alcotest.test_case "mov_ri deletes register taint" `Quick (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000));
              i (Faros_vm.Isa.Mov_ri (r0, 7));
              i Faros_vm.Isa.Halt;
            ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "deleted" true (Provenance.is_empty (reg_prov h r0)));
    Alcotest.test_case "alu union combines operand taint" `Quick (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000));
              i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2004));
              i (Faros_vm.Isa.Add_rr (r0, r1));
              i Faros_vm.Isa.Halt;
            ]
        in
        taint_mem h 0x2000 [ nf ];
        taint_mem h 0x2004 [ Tag.File 0 ];
        run h;
        check_b "nf" true (Provenance.has_netflow (reg_prov h r0));
        check_b "file" true (Provenance.has_file (reg_prov h r0)));
    Alcotest.test_case "xor r,r deletes taint (Table I delete)" `Quick (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000));
              i (Faros_vm.Isa.Xor_rr (r0, r0));
              i Faros_vm.Isa.Halt;
            ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "deleted" true (Provenance.is_empty (reg_prov h r0)));
    Alcotest.test_case "push/pop carry taint through the stack" `Quick (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000));
              i (Faros_vm.Isa.Push r0);
              i (Faros_vm.Isa.Mov_ri (r0, 0));
              i (Faros_vm.Isa.Pop r1);
              i Faros_vm.Isa.Halt;
            ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "through stack" true (Provenance.has_netflow (reg_prov h r1)));
    Alcotest.test_case "call's pushed return address stays clean" `Quick
      (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000));
              Faros_vm.Asm.Call_l "f";
              i Faros_vm.Isa.Halt;
              Faros_vm.Asm.Label "f";
              i (Faros_vm.Isa.Pop r2) (* read the return address *);
              i (Faros_vm.Isa.Jmp_r r2);
            ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "return addr clean" true (Provenance.is_empty (reg_prov h r2)));
    Alcotest.test_case "address dep OFF by default (Fig. 1 undertaint)" `Quick
      (fun () ->
        (* r2 <- table[tainted index]: default policy loses the taint *)
        let items =
          [
            i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2000));
            i (Faros_vm.Isa.Load (1, r2, Faros_vm.Isa.indexed ~scale:1 ~disp:0x2100 r1));
            i Faros_vm.Isa.Halt;
          ]
        in
        let h = harness items in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "laundered" false (Provenance.has_netflow (reg_prov h r2)));
    Alcotest.test_case "address dep ON propagates (Fig. 1 overtaint)" `Quick
      (fun () ->
        let items =
          [
            i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2000));
            i (Faros_vm.Isa.Load (1, r2, Faros_vm.Isa.indexed ~scale:1 ~disp:0x2100 r1));
            i Faros_vm.Isa.Halt;
          ]
        in
        let h = harness ~policy:Policy.with_address_deps items in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "kept" true (Provenance.has_netflow (reg_prov h r2)));
    Alcotest.test_case "minos: address dep only for 8/16-bit" `Quick (fun () ->
        let items w =
          [
            i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2000));
            i (Faros_vm.Isa.Load (w, r2, Faros_vm.Isa.indexed ~scale:1 ~disp:0x2100 r1));
            i Faros_vm.Isa.Halt;
          ]
        in
        let h1 = harness ~policy:Policy.minos (items 1) in
        taint_mem h1 0x2000 [ nf ];
        run h1;
        check_b "8-bit propagates" true (Provenance.has_netflow (reg_prov h1 r2));
        let h4 = harness ~policy:Policy.minos (items 4) in
        taint_mem h4 0x2000 [ nf ];
        run h4;
        check_b "32-bit does not" false (Provenance.has_netflow (reg_prov h4 r2)));
    Alcotest.test_case "control dep OFF by default (Fig. 2 undertaint)" `Quick
      (fun () ->
        (* if (tainted) r2 |= 1 — default: r2 stays clean *)
        let items =
          [
            i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2000));
            i (Faros_vm.Isa.Mov_ri (r2, 0));
            i (Faros_vm.Isa.Mov_ri (r3, 1));
            i (Faros_vm.Isa.Cmp_ri (r1, 0));
            Faros_vm.Asm.Jz_l "skip";
            i (Faros_vm.Isa.Or_rr (r2, r3));
            Faros_vm.Asm.Label "skip";
            i Faros_vm.Isa.Halt;
          ]
        in
        let h = harness items in
        taint_mem h 0x2000 [ nf ];
        Faros_vm.Mmu.write_u8 h.machine.mmu ~asid:h.space.asid 0x2000 1;
        run h;
        check_b "clean" false (Provenance.has_netflow (reg_prov h r2)));
    Alcotest.test_case "control dep ON taints the guarded write (Fig. 2)" `Quick
      (fun () ->
        let items =
          [
            i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2000));
            i (Faros_vm.Isa.Mov_ri (r2, 0));
            i (Faros_vm.Isa.Mov_ri (r3, 1));
            i (Faros_vm.Isa.Cmp_ri (r1, 0));
            Faros_vm.Asm.Jz_l "skip";
            i (Faros_vm.Isa.Or_rr (r2, r3));
            Faros_vm.Asm.Label "skip";
            i Faros_vm.Isa.Halt;
          ]
        in
        let h = harness ~policy:Policy.with_control_deps items in
        taint_mem h 0x2000 [ nf ];
        Faros_vm.Mmu.write_u8 h.machine.mmu ~asid:h.space.asid 0x2000 1;
        run h;
        check_b "tainted" true (Provenance.has_netflow (reg_prov h r2)));
    Alcotest.test_case "immediates taint under minos" `Quick (fun () ->
        (* code bytes tainted -> immediate inherits their provenance *)
        let items = [ i (Faros_vm.Isa.Mov_ri (r0, 5)); i Faros_vm.Isa.Halt ] in
        let h = harness ~policy:Policy.minos items in
        (* taint the instruction's own bytes *)
        for off = 0 to 5 do
          taint_mem h (0x1000 + off) [ nf ]
        done;
        run h;
        check_b "immediate tainted" true (Provenance.has_netflow (reg_prov h r0)));
    Alcotest.test_case "instruction fetch prepends process tag to code" `Quick
      (fun () ->
        let h = harness [ i Faros_vm.Isa.Nop; i Faros_vm.Isa.Halt ] in
        taint_mem h 0x1000 [ nf ];
        run h;
        let p = mem_prov h 0x1000 in
        match Provenance.to_list p with
        | Tag.Process _ :: _ -> ()
        | _ -> Alcotest.failf "expected process tag head, got %a" Provenance.pp p);
    Alcotest.test_case "load observers see instr and data provenance" `Quick
      (fun () ->
        let h =
          harness
            [ i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000)); i Faros_vm.Isa.Halt ]
        in
        taint_mem h 0x2000 [ Tag.Export_table 0 ];
        taint_mem h 0x1000 [ nf ];
        let seen = ref [] in
        Engine.add_load_observer h.engine (fun info -> seen := info :: !seen);
        run h;
        match !seen with
        | [ info ] ->
          check "pc" 0x1000 info.li_pc;
          check_b "instr prov has nf" true (Provenance.has_netflow info.li_instr_prov);
          check_b "read prov has export" true (Provenance.has_export info.li_read_prov)
        | l -> Alcotest.failf "expected 1 load, got %d" (List.length l));
    Alcotest.test_case "taint_export_pointers marks bytes" `Quick (fun () ->
        let e = Engine.create () in
        Engine.taint_export_pointers e [ ("VirtualAlloc", [ 10; 11; 12; 13 ]) ];
        check_b "export" true (Provenance.has_export (Shadow.get_mem e.shadow 10)));
  ]

(* -- engine events ------------------------------------------------------------ *)

let no_asid _ = None

let event_tests =
  [
    Alcotest.test_case "net_recv inserts fresh netflow tags" `Quick (fun () ->
        let e = Engine.create () in
        Shadow.set_mem e.shadow 100 (pl [ Tag.File 0 ]);
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.Net_recv
             { pid = 1; flow = flow 1 2; dst_paddrs = [ 100; 101 ] });
        let p = Shadow.get_mem e.shadow 100 in
        check_b "netflow" true (Provenance.has_netflow p);
        check_b "old taint overwritten" false (Provenance.has_file p));
    Alcotest.test_case "file write then read flows provenance through the file"
      `Quick (fun () ->
        let e = Engine.create () in
        Shadow.set_mem e.shadow 50 (pl [ Tag.Netflow 7 ]);
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.File_write
             { pid = 1; path = "x"; version = 1; offset = 0; src_paddrs = [ 50 ] });
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.File_read
             { pid = 2; path = "x"; version = 2; offset = 0; dst_paddrs = [ 90 ] });
        let p = Shadow.get_mem e.shadow 90 in
        check_b "netflow survives the file hop" true (Provenance.has_netflow p);
        check_b "file tag added" true (Provenance.has_file p));
    Alcotest.test_case "file read at an offset uses the right file bytes" `Quick
      (fun () ->
        let e = Engine.create () in
        Shadow.set_mem e.shadow 50 (pl [ Tag.Netflow 7 ]);
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.File_write
             { pid = 1; path = "x"; version = 1; offset = 4; src_paddrs = [ 50 ] });
        (* read offset 0..3: clean apart from the file tag *)
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.File_read
             { pid = 2; path = "x"; version = 2; offset = 0; dst_paddrs = [ 80 ] });
        check_b "no netflow" false
          (Provenance.has_netflow (Shadow.get_mem e.shadow 80));
        (* read offset 4: carries the netflow *)
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.File_read
             { pid = 2; path = "x"; version = 2; offset = 4; dst_paddrs = [ 81 ] });
        check_b "netflow" true (Provenance.has_netflow (Shadow.get_mem e.shadow 81)));
    Alcotest.test_case "mem_copy moves taint and adds the copier's tag" `Quick
      (fun () ->
        let e = Engine.create () in
        Shadow.set_mem e.shadow 10 (pl [ Tag.Netflow 0 ]);
        Engine.on_os_event e
          ~resolve_asid:(fun pid -> if pid = 7 then Some 77 else None)
          (Faros_os.Os_event.Mem_copy
             {
               by = 7;
               src_pid = 7;
               dst_pid = 8;
               src_paddrs = [ 10; 11 ];
               dst_paddrs = [ 20; 21 ];
             });
        let p = Shadow.get_mem e.shadow 20 in
        check_b "netflow" true (Provenance.has_netflow p);
        check_b "copier tag" true (Provenance.process_indices p <> []);
        check_b "clean source copies clean" true
          (Provenance.is_empty (Shadow.get_mem e.shadow 21)));
    Alcotest.test_case "mem_copy over tainted dst clears when src clean" `Quick
      (fun () ->
        let e = Engine.create () in
        Shadow.set_mem e.shadow 20 (pl [ Tag.Netflow 0 ]);
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.Mem_copy
             { by = 1; src_pid = 1; dst_pid = 2; src_paddrs = [ 10 ]; dst_paddrs = [ 20 ] });
        check_b "cleared" true (Provenance.is_empty (Shadow.get_mem e.shadow 20)));
    Alcotest.test_case "track_files=false suppresses file tags, keeps flow"
      `Quick (fun () ->
        let e = Engine.create ~policy:Policy.bit_taint () in
        Shadow.set_mem e.shadow 50 (pl [ Tag.Netflow 7 ]);
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.File_write
             { pid = 1; path = "x"; version = 1; offset = 0; src_paddrs = [ 50 ] });
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.File_read
             { pid = 2; path = "x"; version = 2; offset = 0; dst_paddrs = [ 90 ] });
        let p = Shadow.get_mem e.shadow 90 in
        check_b "netflow still flows" true (Provenance.has_netflow p);
        check_b "no file tag" false (Provenance.has_file p));
    Alcotest.test_case "file delete clears the file shadow" `Quick (fun () ->
        let e = Engine.create () in
        Shadow.set_mem e.shadow 50 (pl [ Tag.Netflow 7 ]);
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.File_write
             { pid = 1; path = "x"; version = 1; offset = 0; src_paddrs = [ 50 ] });
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.File_deleted { pid = 1; path = "x" });
        Engine.on_os_event e ~resolve_asid:no_asid
          (Faros_os.Os_event.File_read
             { pid = 2; path = "x"; version = 3; offset = 0; dst_paddrs = [ 91 ] });
        check_b "no stale flow" false
          (Provenance.has_netflow (Shadow.get_mem e.shadow 91)));
  ]


(* -- more propagation semantics ----------------------------------------------- *)

let more_engine_tests =
  [
    Alcotest.test_case "store4 taints all four destination bytes" `Quick
      (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000));
              i (Faros_vm.Isa.Store (4, Faros_vm.Isa.abs 0x2100, r0));
              i Faros_vm.Isa.Halt;
            ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        for k = 0 to 3 do
          check_b
            (Printf.sprintf "byte %d" k)
            true
            (Provenance.has_netflow (mem_prov h (0x2100 + k)))
        done);
    Alcotest.test_case "load2 only unions the two bytes read" `Quick (fun () ->
        let h =
          harness
            [ i (Faros_vm.Isa.Load (2, r0, Faros_vm.Isa.abs 0x2000)); i Faros_vm.Isa.Halt ]
        in
        taint_mem h 0x2002 [ nf ] (* outside the access *);
        run h;
        check_b "clean" false (Provenance.has_netflow (reg_prov h r0)));
    Alcotest.test_case "lea unions base and index register taint" `Quick
      (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2000));
              i (Faros_vm.Isa.Mov_ri (r2, 4));
              i (Faros_vm.Isa.Lea (r3, Faros_vm.Isa.indexed ~base:r1 ~scale:2 r2));
              i Faros_vm.Isa.Halt;
            ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "lea result tainted" true (Provenance.has_netflow (reg_prov h r3)));
    Alcotest.test_case "shl_rr and mul union operand taint" `Quick (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2000));
              i (Faros_vm.Isa.Mov_ri (r2, 3));
              i (Faros_vm.Isa.Shl_rr (r2, r1));
              i (Faros_vm.Isa.Mov_ri (r3, 5));
              i (Faros_vm.Isa.Mul_rr (r3, r1));
              i Faros_vm.Isa.Halt;
            ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "shl" true (Provenance.has_netflow (reg_prov h r2));
        check_b "mul" true (Provenance.has_netflow (reg_prov h r3)));
    Alcotest.test_case "not preserves provenance" `Quick (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2000));
              i (Faros_vm.Isa.Not_r r1);
              i Faros_vm.Isa.Halt;
            ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "kept" true (Provenance.has_netflow (reg_prov h r1)));
    Alcotest.test_case "control window expires" `Quick (fun () ->
        (* a write far after the tainted conditional stays clean even under
           the control-dep policy *)
        let filler = List.init 40 (fun _ -> i Faros_vm.Isa.Nop) in
        let items =
          [
            i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2000));
            i (Faros_vm.Isa.Cmp_ri (r1, 0));
            Faros_vm.Asm.Jz_l "skip";
            Faros_vm.Asm.Label "skip";
          ]
          @ filler
          @ [ i (Faros_vm.Isa.Mov_ri (r2, 0)); i (Faros_vm.Isa.Or_ri (r2, 1)); i Faros_vm.Isa.Halt ]
        in
        let h = harness ~policy:Policy.with_control_deps items in
        taint_mem h 0x2000 [ nf ];
        run h;
        check_b "expired" false (Provenance.has_netflow (reg_prov h r2)));
    Alcotest.test_case "engine counts processed instructions" `Quick (fun () ->
        let h = harness [ i Faros_vm.Isa.Nop; i Faros_vm.Isa.Nop; i Faros_vm.Isa.Halt ] in
        run h;
        check "three" 3 (Engine.instrs_processed h.engine));
    Alcotest.test_case "load observers fire in registration order" `Quick
      (fun () ->
        (* observer registration is O(1) on a queue now; the iteration
           order must still be the order the observers were added in *)
        let h =
          harness
            [ i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000)); i Faros_vm.Isa.Halt ]
        in
        let calls = ref [] in
        List.iter
          (fun id ->
            Engine.add_load_observer h.engine (fun _ -> calls := id :: !calls))
          [ 1; 2; 3 ];
        run h;
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !calls));
    Alcotest.test_case "pop notifies load observers" `Quick (fun () ->
        let h =
          harness
            [
              i (Faros_vm.Isa.Mov_ri (r0, 7));
              i (Faros_vm.Isa.Push r0);
              i (Faros_vm.Isa.Pop r1);
              i Faros_vm.Isa.Halt;
            ]
        in
        let loads = ref 0 in
        Engine.add_load_observer h.engine (fun _ -> incr loads);
        run h;
        check "one pop load" 1 !loads);
    Alcotest.test_case "stats reflect tag store population" `Quick (fun () ->
        let h =
          harness
            [ i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2000)); i Faros_vm.Isa.Halt ]
        in
        taint_mem h 0x2000 [ nf ];
        run h;
        let s = Engine.stats h.engine in
        check_b "instrs" true (s.Engine.instrs > 0);
        check_b "tainted" true (s.Engine.tainted_bytes > 0);
        check_b "process tag interned" true (s.Engine.process_tags >= 1));
    Alcotest.test_case "same program, two engines, different policies differ"
      `Quick (fun () ->
        let items =
          [
            i (Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.abs 0x2000));
            i (Faros_vm.Isa.Load (1, r2, Faros_vm.Isa.indexed ~scale:1 ~disp:0x2100 r1));
            i Faros_vm.Isa.Halt;
          ]
        in
        let run_with policy =
          let h = harness ~policy items in
          taint_mem h 0x2000 [ nf ];
          run h;
          Provenance.has_netflow (reg_prov h r2)
        in
        check_b "default drops" false (run_with Policy.faros_default);
        check_b "addr-dep keeps" true (run_with Policy.with_address_deps));
  ]


(* -- block-batched engine equivalence --------------------------------------------- *)

(* Run one replay of a real attack with two independent engines attached —
   per-instruction and basic-block batched — and require identical shadow
   outcomes and identical detection decisions. *)
let block_tests =
  [
    Alcotest.test_case "block batching is observationally equivalent" `Slow
      (fun () ->
        let scn = Faros_corpus.Attack_reflective.reflective_dll_inject () in
        let _, trace = Faros_corpus.Scenario.record scn in
        let direct = ref None and batched = ref None in
        let direct_flags = ref 0 and batched_flags = ref 0 in
        ignore
          (Faros_corpus.Scenario.replay_with scn
             ~plugins:(fun kernel ->
               let resolve pid =
                 Option.map Faros_os.Process.asid (Faros_os.Kstate.proc kernel pid)
               in
               let e1 = Engine.create () in
               let b = Block_engine.create () in
               direct := Some e1;
               batched := Some b;
               Engine.taint_export_pointers e1
                 kernel.exports.Faros_os.Export_table.pointers_by_name;
               Engine.taint_export_pointers b.engine
                 kernel.exports.Faros_os.Export_table.pointers_by_name;
               let flag_rule counter (info : Engine.load_info) =
                 if
                   Provenance.has_export info.li_read_prov
                   && Provenance.has_netflow info.li_instr_prov
                 then incr counter
               in
               Engine.add_load_observer e1 (flag_rule direct_flags);
               Engine.add_load_observer b.engine (flag_rule batched_flags);
               [
                 Faros_replay.Plugin.make "direct"
                   ~on_exec:(fun cpu eff -> Engine.on_exec e1 cpu eff)
                   ~on_os_event:(Engine.on_os_event e1 ~resolve_asid:resolve);
                 Faros_replay.Plugin.make "batched"
                   ~on_exec:(fun cpu eff -> Block_engine.on_exec b cpu eff)
                   ~on_os_event:(Block_engine.on_os_event b ~resolve_asid:resolve);
               ])
             trace);
        let e1 = Option.get !direct and b = Option.get !batched in
        Block_engine.finish b;
        check "same instruction count" (Engine.instrs_processed e1)
          (Engine.instrs_processed b.engine);
        check "same tainted byte count" (Shadow.tainted_bytes e1.shadow)
          (Shadow.tainted_bytes b.engine.shadow);
        check "same flags" !direct_flags !batched_flags;
        check_b "flags fired" true (!direct_flags > 0);
        check_b "batching actually batched" true
          (b.blocks_flushed < Engine.instrs_processed e1);
        (* byte-for-byte shadow equality *)
        Shadow.iter_mem e1.shadow (fun paddr prov ->
            check_b
              (Printf.sprintf "shadow@%x" paddr)
              true
              (Provenance.equal (Shadow.get_mem b.engine.shadow paddr) prov)));
    Alcotest.test_case "flush on kernel events preserves interleaving" `Quick
      (fun () ->
        let b = Block_engine.create () in
        (* a pending straight-line effect must be processed before the event *)
        let machine = Faros_vm.Machine.create () in
        let space = Faros_vm.Mmu.create_space machine.mmu ~name:"t" in
        Faros_vm.Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:1;
        let prog =
          Faros_vm.Asm.assemble ~origin:0x1000
            [ i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x1080)) ]
        in
        Faros_vm.Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
        let cpu = Faros_vm.Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:0 in
        Faros_vm.Machine.add_exec_hook machine (fun c e -> Block_engine.on_exec b c e);
        let paddr = Faros_vm.Mmu.translate machine.mmu ~asid:space.asid 0x1080 in
        Shadow.set_mem b.engine.shadow paddr (pl [ Tag.Netflow 0 ]);
        (match Faros_vm.Machine.step machine cpu with
        | Ok _ -> ()
        | Error f -> Alcotest.failf "fault %a" Faros_vm.Cpu.pp_fault f);
        (* still pending: no branch yet *)
        check "nothing processed yet" 0 (Engine.instrs_processed b.engine);
        Block_engine.on_os_event b ~resolve_asid:(fun _ -> None)
          (Faros_os.Os_event.Net_recv
             { pid = 1; flow = flow 1 2; dst_paddrs = [ paddr ] });
        check "flushed before the event" 1 (Engine.instrs_processed b.engine);
        (* event then overwrote the byte with fresh netflow provenance *)
        check_b "net_recv applied after" true
          (Provenance.to_list (Shadow.get_mem b.engine.shadow paddr)
          = [ Tag.Netflow 0 ]));
  ]


(* -- engine soundness properties ---------------------------------------------------- *)

(* Random straight-line programs with memory traffic inside a scratch
   window. *)
let arb_mem_instrs =
  QCheck.Gen.(
    let* r1 = int_range 0 7 in
    let* r2 = int_range 0 7 in
    let* v = int_range 0 0xFFFF in
    let* off = int_range 0 0xF00 in
    let* w = oneofl [ 1; 2; 4 ] in
    oneofl
      [
        [ Faros_vm.Isa.Mov_ri (r1, v) ];
        [ Faros_vm.Isa.Mov_rr (r1, r2) ];
        [ Faros_vm.Isa.Add_rr (r1, r2) ];
        [ Faros_vm.Isa.Xor_rr (r1, r2) ];
        [ Faros_vm.Isa.And_ri (r1, v) ];
        [ Faros_vm.Isa.Load (w, r1, Faros_vm.Isa.abs (0x2000 + off)) ];
        [ Faros_vm.Isa.Store (w, Faros_vm.Isa.abs (0x2000 + off), r1) ];
        (* keep the index inside the mapped scratch window *)
        [
          Faros_vm.Isa.And_ri (r2, 0xFF);
          Faros_vm.Isa.Load (1, r1, Faros_vm.Isa.indexed ~scale:1 ~disp:0x2000 r2);
        ];
        [ Faros_vm.Isa.Push r1 ];
        [ Faros_vm.Isa.Pop r1 ];
      ])

let arb_mem_program =
  QCheck.Gen.(map List.concat (list_size (int_range 1 50) arb_mem_instrs))

(* Pushes can outnumber pops; keep sp inside the mapped stack by resetting
   it high and bounding program length (60 * 4 bytes << stack pages). *)
let run_program ~policy instrs =
  let h = harness ~policy (List.map (fun x -> i x) instrs @ [ i Faros_vm.Isa.Halt ]) in
  (h, fun () -> run h)

let no_spontaneous_taint =
  QCheck.Test.make ~count:150
    ~name:"no taint appears from nowhere (clean run stays clean)"
    (QCheck.make arb_mem_program)
    (fun instrs ->
      let h, go = run_program ~policy:Policy.with_all_indirect instrs in
      go ();
      Shadow.tainted_bytes h.engine.shadow = 0
      && Shadow.tainted_regs h.engine.shadow = 0)

let tainted_mem_set h =
  let acc = ref [] in
  Shadow.iter_mem h.engine.shadow (fun paddr _ -> acc := paddr :: !acc);
  List.sort_uniq compare !acc

let policy_monotone =
  QCheck.Test.make ~count:150
    ~name:"direct-flow taint is a subset of all-indirect taint"
    (QCheck.make arb_mem_program)
    (fun instrs ->
      let run policy =
        let h, go = run_program ~policy instrs in
        taint_mem h 0x2000 [ nf ];
        taint_mem h 0x2001 [ nf ];
        go ();
        (h, tainted_mem_set h)
      in
      let _, base = run Policy.faros_default in
      let h_all, all = run Policy.with_all_indirect in
      ignore h_all;
      List.for_all (fun p -> List.mem p all) base)

let soundness_tests =
  [
    QCheck_alcotest.to_alcotest no_spontaneous_taint;
    QCheck_alcotest.to_alcotest policy_monotone;
  ]

(* -- demand-driven fast path ----------------------------------------------- *)

(* Like [harness], but executing through the TB cache with the fast path
   interposed between the machine and the engine. *)
let fast_harness ?(policy = Policy.faros_default) items =
  let machine = Faros_vm.Machine.create () in
  Faros_vm.Machine.set_tb_enabled machine true;
  let space = Faros_vm.Mmu.create_space machine.mmu ~name:"guest" in
  Faros_vm.Mmu.map machine.mmu space ~vaddr:0x1000 ~pages:4;
  Faros_vm.Mmu.map machine.mmu space ~vaddr:0x7F000 ~pages:2;
  let prog = Faros_vm.Asm.assemble ~origin:0x1000 items in
  Faros_vm.Mmu.write_bytes machine.mmu ~asid:space.asid 0x1000 prog.code;
  let cpu = Faros_vm.Cpu.create ~cr3:space.asid ~pc:0x1000 ~sp:0x80000 in
  let engine = Engine.create ~policy () in
  let fp = Fastpath.create ~machine engine in
  Faros_vm.Machine.add_exec_hook machine (fun c e -> Fastpath.on_exec fp c e);
  ({ machine; space; cpu; engine }, prog, fp)

let counted_loop n body =
  [ i (Faros_vm.Isa.Mov_ri (r3, n)); Faros_vm.Asm.Label "loop" ]
  @ body
  @ [
      i (Faros_vm.Isa.Sub_ri (r3, 1));
      i (Faros_vm.Isa.Cmp_ri (r3, 0));
      Faros_vm.Asm.Jnz_l "loop";
      i Faros_vm.Isa.Halt;
    ]

let fastpath_tests =
  [
    Alcotest.test_case "clean loop executes on the fast path" `Quick (fun () ->
        let h, _, fp =
          fast_harness (counted_loop 100 [ i (Faros_vm.Isa.Add_rr (r0, r1)) ])
        in
        run h;
        let hits, misses = Fastpath.stats fp in
        check "every instruction accounted" h.cpu.instr_count (hits + misses);
        check_b "mostly skipped" true
          (float_of_int hits /. float_of_int (hits + misses) >= 0.9));
    Alcotest.test_case
      "tainted fetch is never skipped before the process tag lands" `Quick
      (fun () ->
        (* The first execution of tainted code must run the engine so the
           fetch touch prepends the process tag — FAROS's injection
           signal ("including instruction fetch"). *)
        let h, _, _ = fast_harness [ i Faros_vm.Isa.Nop; i Faros_vm.Isa.Halt ] in
        taint_mem h 0x1000 [ nf ];
        run h;
        match Provenance.to_list (mem_prov h 0x1000) with
        | Tag.Process _ :: _ -> ()
        | _ ->
          Alcotest.failf "expected process tag head, got %a" Provenance.pp
            (mem_prov h 0x1000));
    Alcotest.test_case
      "converged tainted code skips, observers still see fetch provenance"
      `Quick
      (fun () ->
        (* Whole-image file tagging means steady-state code is tainted;
           once each byte heads with the process tag the fetch touch is a
           no-op and the block may skip — but the detector's observers
           must keep receiving the real (non-empty) code-byte provenance,
           identical to what the slow path would compute. *)
        let h, prog, fp =
          fast_harness
            (counted_loop 50 [ i (Faros_vm.Isa.Load (1, r0, Faros_vm.Isa.abs 0x2800)) ])
        in
        Shadow.set_mem_range h.engine.Engine.shadow
          (paddr h 0x1000)
          (Bytes.length prog.Faros_vm.Asm.code)
          (pl [ nf ]);
        let loads = ref 0 and tainted_instr = ref 0 and tainted_read = ref 0 in
        Engine.add_load_observer h.engine (fun info ->
            incr loads;
            if Provenance.has_netflow info.li_instr_prov then incr tainted_instr;
            if not (Provenance.is_empty info.li_read_prov) then incr tainted_read);
        run h;
        let hits, _ = Fastpath.stats fp in
        check_b "loop converged onto the fast path" true (hits > 0);
        check "one observation per executed load" 50 !loads;
        check "every observation carries the fetch provenance" 50 !tainted_instr;
        check "clean data reads stay clean" 0 !tainted_read);
  ]

let () =
  Alcotest.run "faros_dift"
    [
      ("tag", tag_tests);
      ("tag-store", store_tests);
      ("provenance", prov_tests);
      ("shadow", shadow_tests);
      ("shadow-properties", shadow_prop_tests);
      ("engine", engine_tests);
      ("engine-more", more_engine_tests);
      ("engine-events", event_tests);
      ("block-engine", block_tests);
      ("soundness", soundness_tests);
      ("fastpath", fastpath_tests);
    ]
