(* Server-daemon subsystem tests: the inbound netstack layer (pump,
   EOF/readiness, the bind/close port-release regression), the
   deterministic traffic generator, the FTR2 trace format, and the
   inject-through-server scenarios — where a whodunit slice must pin the
   one guilty flow among hundreds of benign ones. *)

open Faros_netd

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let ip = Faros_os.Types.Ip.of_string
let guest_ip = Faros_corpus.Servers.guest_ip

let flow ~src_port ~dst_port =
  {
    Faros_os.Types.src_ip = ip "169.254.80.14";
    src_port;
    dst_ip = guest_ip;
    dst_port;
  }

let stack () = Faros_os.Netstack.create ~local_ip:guest_ip

(* -- netstack: inbound pump, EOF, readiness, close ------------------------ *)

let netstack_tests =
  let open Faros_os.Netstack in
  [
    Alcotest.test_case "close releases the bound port for rebinding" `Quick
      (fun () ->
        (* The regression this PR fixes: a closed listener used to leave
           its port claimed forever, so a daemon could never restart. *)
        let t = stack () in
        let s1 = socket t in
        bind t s1 ~port:8080;
        listen t s1;
        close t s1;
        let s2 = socket t in
        bind t s2 ~port:8080;
        listen t s2;
        let f = flow ~src_port:40000 ~dst_port:8080 in
        schedule_inbound t [ (0, Inb_connect f) ];
        pump t ~tick:0;
        check_b "rebound listener accepts" true (accept t s2 <> None));
    Alcotest.test_case "double bind raises Bad_socket" `Quick (fun () ->
        let t = stack () in
        let s1 = socket t in
        bind t s1 ~port:8080;
        let s2 = socket t in
        Alcotest.check_raises "port taken" (Bad_socket s2) (fun () ->
            bind t s2 ~port:8080));
    Alcotest.test_case "closing a listener drains the un-accepted backlog"
      `Quick (fun () ->
        let t = stack () in
        let delivered = ref 0 in
        set_inbound_sink t (fun _ _ -> incr delivered);
        let s1 = socket t in
        bind t s1 ~port:8080;
        listen t s1;
        let f = flow ~src_port:40000 ~dst_port:8080 in
        schedule_inbound t [ (0, Inb_connect f) ];
        pump t ~tick:0;
        check "connect delivered" 1 !delivered;
        close t s1;
        (* the queued connection died with the listener: a fresh listener
           on the same port starts with an empty backlog, and data for the
           dead flow is dropped without reaching the sink *)
        let s2 = socket t in
        bind t s2 ~port:8080;
        listen t s2;
        check_b "backlog drained" true (accept t s2 = None);
        schedule_inbound t [ (1, Inb_data (f, "late")) ];
        pump t ~tick:1;
        check "stale data not delivered" 1 !delivered);
    Alcotest.test_case "accept after close raises Bad_socket" `Quick (fun () ->
        let t = stack () in
        let s1 = socket t in
        bind t s1 ~port:8080;
        listen t s1;
        close t s1;
        Alcotest.check_raises "socket gone" (Bad_socket s1) (fun () ->
            ignore (accept t s1)));
    Alcotest.test_case "undeliverable events vanish without reaching the sink"
      `Quick (fun () ->
        (* No listener on the port: the connect (and the data behind it)
           must be dropped unrecorded — the determinism contract says
           record and replay drop them alike. *)
        let t = stack () in
        let delivered = ref 0 in
        set_inbound_sink t (fun _ _ -> incr delivered);
        let f = flow ~src_port:40000 ~dst_port:9999 in
        schedule_inbound t
          [ (0, Inb_connect f); (1, Inb_data (f, "x")); (2, Inb_fin f) ];
        pump t ~tick:5;
        check "nothing delivered" 0 !delivered;
        check "schedule fully consumed" 0 (pending_inbound t));
    Alcotest.test_case "recv, EOF and readiness over a full flow life" `Quick
      (fun () ->
        let t = stack () in
        let l = socket t in
        bind t l ~port:8080;
        listen t l;
        check "listener idle" 0 (readiness t l);
        let f = flow ~src_port:40000 ~dst_port:8080 in
        schedule_inbound t
          [ (0, Inb_connect f); (0, Inb_data (f, "hello")); (5, Inb_fin f) ];
        pump t ~tick:0;
        check "listener ready" 1 (readiness t l);
        let conn = Option.get (accept t l) in
        check_b "flow recorded" true (flow_of t conn = Some f);
        check "rx available" 1 (readiness t conn);
        check_b "not yet eof" true (not (eof t conn));
        check_s "payload" "hello" (recv t conn ~len:64);
        check "drained, no fin yet" 0 (readiness t conn);
        pump t ~tick:5;
        check "fin raises the eof bit" 2 (readiness t conn);
        check_b "eof after drain" true (eof t conn);
        check_s "recv at eof" "" (recv t conn ~len:64));
    Alcotest.test_case "data after fin is refused" `Quick (fun () ->
        let t = stack () in
        let delivered = ref 0 in
        set_inbound_sink t (fun _ _ -> incr delivered);
        let l = socket t in
        bind t l ~port:8080;
        listen t l;
        let f = flow ~src_port:40000 ~dst_port:8080 in
        schedule_inbound t
          [ (0, Inb_connect f); (1, Inb_fin f); (2, Inb_data (f, "zombie")) ];
        pump t ~tick:2;
        check "connect + fin only" 2 !delivered);
    Alcotest.test_case "send to a closed loopback peer is swallowed" `Quick
      (fun () ->
        let t = stack () in
        let l = socket t in
        bind t l ~port:7000;
        listen t l;
        let c = socket t in
        ignore (connect t c ~ip:loopback_ip ~port:7000);
        let server = Option.get (accept t l) in
        close t server;
        (* like a TCP RST: bytes vanish, the sender does not crash *)
        check "send returns length" 4 (send t c "ping");
        check_b "client reads eof" true (eof t c));
  ]

(* -- traffic generator ---------------------------------------------------- *)

let sched ?(clients = 6) ?arrival ?data_gap () =
  Gen.make ?arrival ?data_gap ~dst_ip:guest_ip ~dst_port:8080
    ~payload:(fun i -> [ Printf.sprintf "req-%d" i ])
    clients

let gen_tests =
  [
    Alcotest.test_case "uniform arrivals space clients evenly" `Quick (fun () ->
        let s = sched ~arrival:(Gen.Uniform 40) () in
        List.iter
          (fun i -> check "tick" (500 + (i * 40)) (Gen.connect_tick s i))
          [ 0; 1; 2; 5 ]);
    Alcotest.test_case "burst arrivals land in groups" `Quick (fun () ->
        let s = sched ~arrival:(Gen.Burst { size = 3; gap = 300 }) () in
        check "first of burst 0" 500 (Gen.connect_tick s 0);
        check "last of burst 0" 500 (Gen.connect_tick s 2);
        check "first of burst 1" 800 (Gen.connect_tick s 3);
        check "last of burst 1" 800 (Gen.connect_tick s 5));
    Alcotest.test_case "ramp arrivals tighten monotonically" `Quick (fun () ->
        let s =
          sched ~clients:10 ~arrival:(Gen.Ramp { start_gap = 80; end_gap = 10 }) ()
        in
        let ticks = List.init 10 (Gen.connect_tick s) in
        check "starts at first_tick" 500 (List.hd ticks);
        let rec gaps = function
          | a :: (b :: _ as rest) -> (b - a) :: gaps rest
          | _ -> []
        in
        let gs = gaps ticks in
        check_b "strictly increasing ticks" true (List.for_all (fun g -> g > 0) gs);
        check_b "gaps narrow" true (List.hd (List.rev gs) < List.hd gs));
    Alcotest.test_case "per-client flows get distinct source ports" `Quick
      (fun () ->
        let s = sched () in
        let f0 = Gen.flow_of_client s 0 and f3 = Gen.flow_of_client s 3 in
        check "base port" Gen.default_base_src_port f0.Faros_os.Types.src_port;
        check "offset port" (Gen.default_base_src_port + 3) f3.src_port;
        check "server port" 8080 f0.dst_port);
    Alcotest.test_case "events: connect, data, fin per client, tick-sorted"
      `Quick (fun () ->
        let s = sched ~clients:3 ~data_gap:2 () in
        let evs = Gen.events s in
        check "three events per client" 9 (List.length evs);
        check_b "globally tick-sorted" true
          (let rec sorted = function
             | (a, _) :: ((b, _) :: _ as rest) -> a <= b && sorted rest
             | _ -> true
           in
           sorted evs);
        (* per-flow order: connect < data < fin *)
        List.iter
          (fun i ->
            let f = Gen.flow_of_client s i in
            let mine =
              List.filter_map
                (fun (_, e) ->
                  match e with
                  | Faros_os.Netstack.Inb_connect g when g = f -> Some `C
                  | Inb_data (g, _) when g = f -> Some `D
                  | Inb_fin g when g = f -> Some `F
                  | _ -> None)
                evs
            in
            check_b "life order" true (mine = [ `C; `D; `F ]))
          [ 0; 1; 2 ];
        check_b "horizon covers the last event" true
          (List.for_all (fun (at, _) -> at <= Gen.horizon s) evs);
        check "payload byte total" (String.length "req-0" * 3) (Gen.total_bytes s));
  ]

(* -- trace format: FTR2 with inbound events, FTR1 back-compat ------------- *)

let trace_tests =
  let open Faros_replay in
  [
    Alcotest.test_case "inbound events round-trip through serialize/parse"
      `Quick (fun () ->
        let f = flow ~src_port:40000 ~dst_port:8080 in
        let t =
          {
            Trace.events =
              [
                Trace.Inbound (10, Faros_os.Netstack.Inb_connect f);
                Trace.Inbound (12, Inb_data (f, "GET /\r\n"));
                Trace.Packet (f, "interleaved");
                Trace.Key 65;
                Trace.Inbound (20, Inb_fin f);
              ];
            final_tick = 999;
            syscall_count = 7;
          }
        in
        let data = Trace.serialize t in
        check_s "v2 magic" "FTR2" (String.sub data 0 4);
        let t' = Trace.parse data in
        check "inbound count" 3 (Trace.inbound_count t');
        check_b "schedule preserved" true
          (Trace.inbound_schedule t' = Trace.inbound_schedule t);
        check_b "events preserved" true (t'.events = t.events);
        check "final tick" t.final_tick t'.final_tick;
        check_b "rx bytes include inbound data" true
          (Trace.total_rx_bytes t' > 0));
    Alcotest.test_case "traces without inbound events stay byte-format v1"
      `Quick (fun () ->
        let f = flow ~src_port:4444 ~dst_port:49162 in
        let t =
          {
            Trace.events = [ Trace.Packet (f, "classic"); Trace.Key 13 ];
            final_tick = 5;
            syscall_count = 2;
          }
        in
        let data = Trace.serialize t in
        check_s "v1 magic" "FTR1" (String.sub data 0 4);
        check_b "parses back" true (Trace.parse data = t));
  ]

(* -- scenarios: record/replay, detection, whodunit ------------------------ *)

let fresh_store () =
  Faros_dift.Prov_intern.set_store (Faros_dift.Prov_intern.create_store ())

let build_graph (scn : Faros_corpus.Scenario.t) =
  fresh_store ();
  let builder = ref None in
  let outcome =
    Faros_corpus.Scenario.analyze
      ~extra_plugins:(fun kernel faros ->
        let b = Faros_graph.Build.create ~sample:scn.scn_name () in
        builder := Some b;
        [ Faros_graph.Build.plugin b ~kernel ~faros ])
      scn
  in
  let b = Option.get !builder in
  Faros_graph.Build.enrich b outcome.faros;
  (Faros_graph.Build.graph b, outcome)

let origin_flows (sl : Faros_graph.Slice.t) =
  List.filter_map
    (fun (n : Faros_graph.Graph.node) ->
      match n.n_kind with Faros_graph.Graph.Flow f -> Some f | _ -> None)
    sl.sl_origins

let scenario_tests =
  [
    Alcotest.test_case "benign server under load: deterministic and clean"
      `Slow (fun () ->
        fresh_store ();
        let scn, schd = Faros_corpus.Servers.benign_load ~clients:50 () in
        let outcome = Faros_corpus.Scenario.analyze scn in
        check_b "not diverged" true (not outcome.replay.diverged);
        check_b "no false positive" true (not (Core.Analysis.flagged outcome));
        check "every connection replayed" (3 * 50)
          (Faros_replay.Trace.inbound_count outcome.trace);
        check_b "under budget" true
          (outcome.record_ticks < scn.max_ticks);
        ignore schd);
    Alcotest.test_case
      "inject through server: the slice pins the one guilty flow" `Slow
      (fun () ->
        let scn, schd, guilty =
          Faros_corpus.Servers.inject_under_load ~clients:40 ()
        in
        let g, outcome = build_graph scn in
        check_b "flagged" true (Core.Analysis.flagged outcome);
        check_b "not diverged" true (not outcome.replay.diverged);
        let guilty_flow = Faros_corpus.Servers.guilty_flow schd guilty in
        let slices = Faros_graph.Slice.slices g in
        check_b "has slices" true (slices <> []);
        List.iter
          (fun sl ->
            match origin_flows sl with
            | [ f ] ->
              check_b "exactly the guilty 5-tuple" true (f = guilty_flow)
            | fs ->
              Alcotest.failf "expected 1 origin flow, got %d" (List.length fs))
          slices);
    Alcotest.test_case
      "acceptance: 500 connections, under budget, single guilty origin" `Slow
      (fun () ->
        let s =
          match Faros_corpus.Registry.find "netd_inject_500" with
          | Some s -> s
          | None -> Alcotest.fail "netd_inject_500 not registered"
        in
        let g, outcome = build_graph s.scenario in
        check_b "completes under the tick budget" true
          (outcome.record_ticks < s.scenario.max_ticks
          && outcome.replay.replay_ticks < s.scenario.max_ticks);
        check_b "not diverged" true (not outcome.replay.diverged);
        check_b "flagged" true (Core.Analysis.flagged outcome);
        let guilty =
          {
            Faros_os.Types.src_ip = Gen.default_src_ip;
            src_port = Gen.default_base_src_port + 250;
            dst_ip = guest_ip;
            dst_port = Faros_corpus.Servers.server_port;
          }
        in
        let slices = Faros_graph.Slice.slices g in
        check_b "has slices" true (slices <> []);
        List.iter
          (fun sl ->
            check_b "exactly the guilty flow, no benign ones" true
              (origin_flows sl = [ guilty ]))
          slices);
    Alcotest.test_case "staged C2: origins are the stager's own flows" `Slow
      (fun () ->
        let scn, schd = Faros_corpus.Servers.staged_c2 ~stages:3 () in
        let g, outcome = build_graph scn in
        check_b "flagged" true (Core.Analysis.flagged outcome);
        let stage_flows = List.init 3 (Gen.flow_of_client schd) in
        let slices = Faros_graph.Slice.slices g in
        check_b "has slices" true (slices <> []);
        let seen =
          List.concat_map origin_flows slices
          |> List.sort_uniq compare
        in
        check_b "every origin is a stage flow" true
          (List.for_all (fun f -> List.mem f stage_flows) seen);
        check_b "multiple stages contributed" true (List.length seen >= 2));
  ]

(* -- per-flow attribution under concurrency (mux daemon) ------------------ *)

(* Analyze with the DIFT fast path forced on or off; fresh interner per
   run so rendered provenance does not depend on run order. *)
let analyze_fast ~fast scn =
  let saved = !Faros_vm.Machine.dift_fast_default_enabled in
  Faros_vm.Machine.dift_fast_default_enabled := fast;
  Fun.protect
    ~finally:(fun () -> Faros_vm.Machine.dift_fast_default_enabled := saved)
    (fun () ->
      fresh_store ();
      Faros_corpus.Scenario.analyze scn)

(* Each mux slot's buffer must head with the netflow tag of the one flow
   that filled it — concurrency must not bleed taint across slots.  The
   image is wholesale file-tainted at load, so contiguous-region queries
   coalesce the whole buffer block into one run; the per-flow question
   needs per-byte shadow provenance instead. *)
let prov_at (outcome : Core.Analysis.outcome) (p : Faros_os.Process.t) vaddr =
  let mmu = outcome.faros.kernel.machine.mmu in
  let paddr =
    Faros_vm.Mmu.translate mmu ~asid:(Faros_os.Process.asid p) vaddr
  in
  Faros_dift.Shadow.get_mem outcome.faros.engine.shadow paddr

let netflows_of (outcome : Core.Analysis.outcome) prov =
  let store = outcome.faros.engine.store in
  List.filter_map
    (fun (tag : Faros_dift.Tag.t) ->
      match tag with
      | Faros_dift.Tag.Netflow i -> Faros_dift.Tag_store.netflow_of store i
      | _ -> None)
    (Faros_dift.Provenance.to_list prov)
  |> List.sort_uniq compare

let slot_flows (outcome : Core.Analysis.outcome) (layout : Daemon.mux_layout) =
  let kernel = outcome.faros.kernel in
  let muxd =
    match
      List.find_opt
        (fun (p : Faros_os.Process.t) ->
          Faros_os.Kstate.proc_name kernel p.pid = "muxd.exe")
        (Faros_os.Kstate.processes kernel)
    with
    | Some p -> p
    | None -> Alcotest.fail "muxd.exe not found"
  in
  List.init layout.Daemon.mux_slots (fun slot ->
      let base = layout.Daemon.mux_bufs + (slot * layout.Daemon.mux_stride) in
      let len = String.length (Faros_corpus.Servers.mux_payload slot) in
      (* first and last payload byte: both must name exactly this slot's
         flow, and nothing from any neighbour *)
      let head = netflows_of outcome (prov_at outcome muxd base) in
      let tail = netflows_of outcome (prov_at outcome muxd (base + len - 1)) in
      (slot, List.sort_uniq compare (head @ tail)))

let mux_tests =
  [
    Alcotest.test_case
      "mux fan-in: every slot heads with its own flow, fast path on and off"
      `Slow (fun () ->
        let scn, schd, layout = Faros_corpus.Servers.mux_fanin ~clients:6 () in
        let run fast =
          let outcome = analyze_fast ~fast scn in
          check_b "clean" true (not (Core.Analysis.flagged outcome));
          check_b "not diverged" true (not outcome.replay.diverged);
          let slots = slot_flows outcome layout in
          check_b "all six slots tainted" true (List.length slots >= 6);
          List.iter
            (fun (slot, flows) ->
              check_b
                (Printf.sprintf "slot %d attributed to exactly its flow" slot)
                true
                (flows = [ Gen.flow_of_client schd slot ]))
            slots;
          (* plain data for the cross-configuration comparison *)
          List.map
            (fun (slot, flows) ->
              ( slot,
                List.map
                  (fun (f : Faros_os.Types.flow) -> (f.src_port, f.dst_port))
                  flows ))
            slots
        in
        let slow = run false in
        let fast = run true in
        check_b "fast path changes nothing" true (slow = fast));
  ]

(* -- registry wiring ------------------------------------------------------ *)

let registry_tests =
  [
    Alcotest.test_case "sweep families enumerate and resolve" `Quick (fun () ->
        let sweeps = Faros_corpus.Registry.netd_sweeps () in
        (* 4 client counts x 3 arrivals x {benign, inject} + 3 staging *)
        check "sweep family size" 27 (List.length sweeps);
        List.iter
          (fun (s : Faros_corpus.Registry.sample) ->
            check_s "family" "netd-sweep" s.family;
            match Faros_corpus.Registry.find s.id with
            | Some found -> check_s "find resolves" s.id found.id
            | None -> Alcotest.failf "%s not findable" s.id)
          sweeps);
    Alcotest.test_case "showcase samples stay out of the core corpus" `Quick
      (fun () ->
        let showcase = Faros_corpus.Registry.netd_showcase () in
        check "showcase size" 5 (List.length showcase);
        let core_ids =
          List.map
            (fun (s : Faros_corpus.Registry.sample) -> s.id)
            (Faros_corpus.Registry.all ())
        in
        check "core corpus unchanged" 130 (List.length core_ids);
        List.iter
          (fun (s : Faros_corpus.Registry.sample) ->
            check_b (s.id ^ " not in core") true (not (List.mem s.id core_ids));
            check_b (s.id ^ " findable") true
              (Faros_corpus.Registry.find s.id <> None))
          showcase);
  ]

let () =
  Alcotest.run "netd"
    [
      ("netstack", netstack_tests);
      ("gen", gen_tests);
      ("trace", trace_tests);
      ("scenarios", scenario_tests);
      ("mux", mux_tests);
      ("registry", registry_tests);
    ]
