(* Tests for record/replay: trace serialization, deterministic replay of
   real scenarios, divergence detection, and the plugin API. *)

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let flow a b =
  { Faros_os.Types.src_ip = a; src_port = 10; dst_ip = b; dst_port = 20 }

(* -- trace ------------------------------------------------------------------ *)

(* A small pool of flows so generated traces interleave chunks of several
   concurrent connections, and payload sizes biased toward the edges:
   zero-length chunks and max-length (64 KiB) payloads both round-trip. *)
let max_payload = 65_536

let arb_event =
  QCheck.Gen.(
    let* tag = bool in
    if tag then
      let* k = int_range 0 255 in
      return (Faros_replay.Trace.Key k)
    else
      let* a = int_range 1 4 in
      let* b = int_range 1 4 in
      let* size =
        frequency
          [
            (3, int_range 0 64);
            (1, return 0);
            (1, return max_payload);
          ]
      in
      let* data = string_size (return size) in
      return (Faros_replay.Trace.Packet (flow a b, data)))

let arb_trace =
  QCheck.Gen.(
    let* events = list_size (int_range 0 30) arb_event in
    let* final_tick = int_range 0 1_000_000 in
    let* syscall_count = int_range 0 10_000 in
    return { Faros_replay.Trace.events; final_tick; syscall_count })

let trace_roundtrip =
  QCheck.Test.make ~count:200 ~name:"trace serialize/parse roundtrip"
    (QCheck.make arb_trace) (fun t ->
      Faros_replay.Trace.parse (Faros_replay.Trace.serialize t) = t)

let trace_tests =
  [
    Alcotest.test_case "rx_chunks filters by flow, keeps order" `Quick (fun () ->
        let t =
          {
            Faros_replay.Trace.events =
              [
                Packet (flow 1 2, "a");
                Key 65;
                Packet (flow 3 4, "x");
                Packet (flow 1 2, "b");
              ];
            final_tick = 0;
            syscall_count = 0;
          }
        in
        Alcotest.(check (list string))
          "chunks" [ "a"; "b" ]
          (Faros_replay.Trace.rx_chunks t (flow 1 2));
        Alcotest.(check (list int)) "keys" [ 65 ] (Faros_replay.Trace.keys t);
        check "packets" 3 (Faros_replay.Trace.packet_count t);
        check "bytes" 3 (Faros_replay.Trace.total_rx_bytes t));
    Alcotest.test_case "bad trace rejected" `Quick (fun () ->
        List.iter
          (fun s ->
            match Faros_replay.Trace.parse s with
            | exception Faros_replay.Trace.Bad_trace _ -> ()
            | _ -> Alcotest.failf "accepted %S" s)
          [ ""; "XXXX"; "FTR1\x01" ]);
    Alcotest.test_case "binary payloads survive" `Quick (fun () ->
        let data = String.init 256 Char.chr in
        let t =
          {
            Faros_replay.Trace.events = [ Packet (flow 1 2, data) ];
            final_tick = 1;
            syscall_count = 1;
          }
        in
        let t' = Faros_replay.Trace.parse (Faros_replay.Trace.serialize t) in
        check_b "equal" true (t = t'));
    Alcotest.test_case "edge cases round-trip" `Quick (fun () ->
        let roundtrip t =
          Faros_replay.Trace.parse (Faros_replay.Trace.serialize t)
        in
        (* the empty trace *)
        check_b "empty" true
          (roundtrip Faros_replay.Trace.empty = Faros_replay.Trace.empty);
        (* interleaved flows with zero-length and max-length chunks *)
        let t =
          {
            Faros_replay.Trace.events =
              [
                Packet (flow 1 2, "");
                Packet (flow 3 4, String.make max_payload 'x');
                Packet (flow 1 2, "tail");
                Key 13;
                Packet (flow 3 4, "");
              ];
            final_tick = 42;
            syscall_count = 7;
          }
        in
        let t' = roundtrip t in
        check_b "interleaved equal" true (t = t');
        Alcotest.(check (list string))
          "flow 1-2 chunks, order kept" [ ""; "tail" ]
          (Faros_replay.Trace.rx_chunks t' (flow 1 2));
        check "max payload survives" max_payload
          (Faros_replay.Trace.total_rx_bytes t' - 4));
    QCheck_alcotest.to_alcotest trace_roundtrip;
  ]

(* -- record / replay ---------------------------------------------------------- *)

let scenario () = Faros_corpus.Attack_reflective.reflective_dll_inject ()

let replay_tests =
  [
    Alcotest.test_case "replay is tick-exact" `Quick (fun () ->
        let scn = scenario () in
        let _, trace = Faros_corpus.Scenario.record scn in
        let r = Faros_corpus.Scenario.replay_plain scn trace in
        check_b "no divergence" false r.diverged;
        check "ticks" trace.final_tick r.replay_ticks;
        check "syscalls" trace.syscall_count r.replay_syscalls);
    Alcotest.test_case "replay is repeatable" `Quick (fun () ->
        let scn = scenario () in
        let _, trace = Faros_corpus.Scenario.record scn in
        let r1 = Faros_corpus.Scenario.replay_plain scn trace in
        let r2 = Faros_corpus.Scenario.replay_plain scn trace in
        check "same ticks" r1.replay_ticks r2.replay_ticks);
    Alcotest.test_case "recording twice is deterministic" `Quick (fun () ->
        let _, t1 = Faros_corpus.Scenario.record (scenario ()) in
        let _, t2 = Faros_corpus.Scenario.record (scenario ()) in
        check "ticks" t1.final_tick t2.final_tick;
        check_b "same events" true (t1.events = t2.events));
    Alcotest.test_case "tampered trace diverges" `Quick (fun () ->
        let scn = scenario () in
        let _, trace = Faros_corpus.Scenario.record scn in
        (* corrupt the payload: the victim executes different bytes *)
        let events =
          List.map
            (fun ev ->
              match ev with
              | Faros_replay.Trace.Packet (f, data) when String.length data > 8 ->
                Faros_replay.Trace.Packet
                  (f, String.sub data 0 (String.length data / 2))
              | ev -> ev)
            trace.Faros_replay.Trace.events
        in
        let r = Faros_corpus.Scenario.replay_plain scn { trace with events } in
        check_b "diverged" true r.diverged);
    Alcotest.test_case "keystrokes are recorded and replayed" `Quick (fun () ->
        let scn = Faros_corpus.Attack_hollowing.scenario () in
        let _, trace = Faros_corpus.Scenario.record scn in
        check_b "keys recorded" true (Faros_replay.Trace.keys trace <> []);
        let r = Faros_corpus.Scenario.replay_plain scn trace in
        check_b "no divergence" false r.diverged);
    Alcotest.test_case "plugin exec hook sees every instruction" `Quick
      (fun () ->
        let scn = scenario () in
        let _, trace = Faros_corpus.Scenario.record scn in
        let count = ref 0 in
        let r =
          Faros_corpus.Scenario.replay_with scn
            ~plugins:(fun _kernel ->
              [ Faros_replay.Plugin.make "counter" ~on_exec:(fun _ _ -> incr count) ])
            trace
        in
        check "every instruction" r.replay_ticks !count);
    Alcotest.test_case "plugin os hook sees kernel events" `Quick (fun () ->
        let scn = scenario () in
        let _, trace = Faros_corpus.Scenario.record scn in
        let events = ref 0 in
        ignore
          (Faros_corpus.Scenario.replay_with scn
             ~plugins:(fun _ ->
               [
                 Faros_replay.Plugin.make "events" ~on_os_event:(fun _ -> incr events);
               ])
             trace);
        check_b "saw events" true (!events > 0));
    Alcotest.test_case "analysis plugin does not perturb the guest" `Quick
      (fun () ->
        (* the whole point of replay-based analysis: FAROS on or off, the
           guest executes identically *)
        let scn = scenario () in
        let _, trace = Faros_corpus.Scenario.record scn in
        let plain = Faros_corpus.Scenario.replay_plain scn trace in
        let faros = ref None in
        let with_faros =
          Faros_corpus.Scenario.replay_with scn
            ~plugins:(fun kernel ->
              let f = Core.Faros_plugin.create kernel in
              faros := Some f;
              [ Core.Faros_plugin.plugin f ])
            trace
        in
        check "same ticks" plain.replay_ticks with_faros.replay_ticks;
        check_b "analysis ran" true
          (match !faros with
          | Some f -> Faros_dift.Engine.instrs_processed f.engine = with_faros.replay_ticks
          | None -> false));
  ]


(* -- more replay properties ------------------------------------------------------ *)

let more_replay_tests =
  [
    Alcotest.test_case "loopback traffic stays out of the trace" `Quick
      (fun () ->
        let scn = Faros_corpus.Extras.ipc_pair () in
        let _, trace = Faros_corpus.Scenario.record scn in
        check "no packets recorded" 0 (Faros_replay.Trace.packet_count trace);
        let r = Faros_corpus.Scenario.replay_plain scn trace in
        check_b "replays exactly" false r.diverged);
    Alcotest.test_case "plugins can watch the recording run" `Quick (fun () ->
        let scn = Faros_corpus.Attack_reflective.reflective_dll_inject () in
        let seen = ref 0 in
        let _, trace =
          Faros_replay.Recorder.record ~max_ticks:scn.max_ticks
            ~plugins:(fun _ ->
              [ Faros_replay.Plugin.make "c" ~on_exec:(fun _ _ -> incr seen) ])
            ~setup:(Faros_corpus.Scenario.setup_record scn)
            ~boot:(Faros_corpus.Scenario.boot scn)
            ()
        in
        check "hooked every instruction" trace.final_tick !seen);
    Alcotest.test_case "trace file written and read back through disk format"
      `Quick (fun () ->
        let scn = Faros_corpus.Attack_hollowing.scenario () in
        let _, trace = Faros_corpus.Scenario.record scn in
        let bytes = Faros_replay.Trace.serialize trace in
        let trace2 = Faros_replay.Trace.parse bytes in
        let r = Faros_corpus.Scenario.replay_plain scn trace2 in
        check_b "replays from parsed trace" false r.diverged);
    Alcotest.test_case "empty trace diverges for a network-dependent sample"
      `Quick (fun () ->
        let scn = Faros_corpus.Attack_reflective.reflective_dll_inject () in
        let _, trace = Faros_corpus.Scenario.record scn in
        let r =
          Faros_corpus.Scenario.replay_plain scn
            { Faros_replay.Trace.empty with
              final_tick = trace.final_tick;
              syscall_count = trace.syscall_count;
            }
        in
        check_b "diverged" true r.diverged);
    Alcotest.test_case "two plugins both receive events, in order" `Quick
      (fun () ->
        let scn = Faros_corpus.Attack_hollowing.scenario () in
        let _, trace = Faros_corpus.Scenario.record scn in
        let order = ref [] in
        ignore
          (Faros_corpus.Scenario.replay_with scn
             ~plugins:(fun _ ->
               [
                 Faros_replay.Plugin.make "a" ~on_os_event:(fun _ ->
                     order := `A :: !order);
                 Faros_replay.Plugin.make "b" ~on_os_event:(fun _ ->
                     order := `B :: !order);
               ])
             trace);
        match List.rev !order with
        | `A :: `B :: _ -> ()
        | _ -> Alcotest.fail "expected a then b");
  ]

let () =
  Alcotest.run "faros_replay"
    [
      ("trace", trace_tests);
      ("record-replay", replay_tests);
      ("replay-more", more_replay_tests);
    ]
